"""Stage supervision: per-item deadlines and whole-pipeline stall detection.

A pipelined stitch can wedge in two distinct ways that PR 1's in-process
retry machinery cannot see:

- **item hang** -- one handler invocation never returns (a stuck read, a
  dead remote filesystem, an injected :class:`FaultKind.HANG`).  The
  existing ``item_timeout`` is *post hoc*: it only notices the overrun
  when the handler finally returns, which a true hang never does.
- **pipeline stall** -- every worker is blocked (e.g. a stage silently
  swallowing items starves its consumers) and ``Pipeline.join()`` would
  wait forever.

The :class:`Watchdog` is one daemon thread polling the supervised
pipeline's progress counters and per-worker in-flight table.  An item past
its deadline gets its :class:`~repro.recovery.cancel.CancelToken`
cancelled -- cooperative code raises
:class:`~repro.recovery.cancel.ItemCancelled`, the stage's
:class:`ErrorPolicy` fails the item fast (cancellation is never retried),
and a ``skip``/``degrade`` policy drops it exactly like any other
exhausted failure, flowing into PR 1's bookkeeper-cancellation and
degraded-stitch semantics.  An item that ignores its cancelled token past
the escalation grace, or a pipeline making no progress for
``stall_timeout`` seconds, triggers **escalation**: the watchdog aborts
the pipeline (closing every queue so blocked workers unblock), records a
structured :class:`StallReport`, and the supervised ``Pipeline.join()``
returns/raises promptly instead of deadlocking.

The watchdog never imports the pipeline package (it duck-types the
``stages``/``queues``/``abort`` surface), so ``pipeline/graph.py`` can
import *it* without a cycle.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class WatchdogConfig:
    """Supervision thresholds.

    ``item_deadline``
        Per-item wall-clock budget (seconds); an in-flight item past this
        gets its cancel token flagged.  ``None`` disables per-item
        supervision (stall detection still runs).
    ``stall_timeout``
        Whole-pipeline no-progress budget (seconds): if no stage
        processes an item and no queue moves for this long while work is
        still in flight or queued, the pipeline is declared stalled.
    ``escalation_grace``
        Extra multiple of ``item_deadline`` a *cancelled* item may remain
        in flight before the watchdog concludes the handler is not
        cooperating and escalates to pipeline abort.
    ``poll_interval``
        Watchdog wake-up period (seconds).  Detection latency is at most
        one poll past the configured deadline.
    """

    item_deadline: float | None = None
    stall_timeout: float = 30.0
    escalation_grace: float = 1.0
    poll_interval: float = 0.05

    def __post_init__(self) -> None:
        if self.item_deadline is not None and self.item_deadline <= 0:
            raise ValueError(f"item_deadline must be > 0, got {self.item_deadline}")
        if self.stall_timeout <= 0:
            raise ValueError(f"stall_timeout must be > 0, got {self.stall_timeout}")
        if self.poll_interval <= 0:
            raise ValueError(f"poll_interval must be > 0, got {self.poll_interval}")


@dataclass
class Intervention:
    """One watchdog action against a supervised item."""

    stage: str
    worker_index: int
    key: str | None
    elapsed: float
    action: str  # "cancelled" | "escalated"


@dataclass
class StallReport:
    """Structured account of why (and how) the watchdog intervened.

    ``kind`` is ``"item_hang"`` (a cancelled item would not die) or
    ``"pipeline_stall"`` (no progress anywhere); ``escalated`` is False
    when every intervention was handled cooperatively and the pipeline
    finished on its own.
    """

    pipeline: str
    kind: str | None = None
    escalated: bool = False
    detail: str = ""
    interventions: list[Intervention] = field(default_factory=list)
    #: ``stage -> [ {worker, key, elapsed} ]`` snapshot at escalation time.
    inflight: dict[str, list[dict]] = field(default_factory=dict)
    #: Stage/queue progress counters at escalation time.
    progress: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "pipeline": self.pipeline,
            "kind": self.kind,
            "escalated": self.escalated,
            "detail": self.detail,
            "interventions": [
                {
                    "stage": i.stage,
                    "worker": i.worker_index,
                    "key": i.key,
                    "elapsed": round(i.elapsed, 4),
                    "action": i.action,
                }
                for i in self.interventions
            ],
            "inflight": self.inflight,
            "progress": self.progress,
        }


class Watchdog:
    """One supervision thread over a running pipeline.

    ``pipeline`` must expose ``name``, ``stages`` (each with ``name``,
    ``items_processed``, and an ``inflight()`` snapshot of
    ``(worker_index, key, started_monotonic, token)`` tuples), ``queues``
    (each with ``total_put``/``total_get``/``depth()``) and ``abort()``.
    """

    def __init__(self, pipeline, config: WatchdogConfig, metrics=None) -> None:
        self.pipeline = pipeline
        self.config = config
        self.metrics = metrics
        self.interventions: list[Intervention] = []
        self._report: StallReport | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "Watchdog":
        if self._thread is not None:
            raise RuntimeError("watchdog already started")
        self._thread = threading.Thread(
            target=self._run, name=f"watchdog-{self.pipeline.name}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    @property
    def escalated(self) -> bool:
        return self._report is not None and self._report.escalated

    def report(self) -> StallReport | None:
        """The escalation report, or a non-escalated summary of cooperative
        cancellations, or ``None`` when the watchdog never intervened."""
        with self._lock:
            if self._report is not None:
                return self._report
            if self.interventions:
                return StallReport(
                    pipeline=self.pipeline.name,
                    kind="item_hang",
                    escalated=False,
                    detail=(
                        f"{len(self.interventions)} item(s) cancelled "
                        f"cooperatively; pipeline completed"
                    ),
                    interventions=list(self.interventions),
                )
            return None

    # -- supervision loop ----------------------------------------------------

    def _progress_counter(self) -> int:
        total = 0
        for s in self.pipeline.stages:
            total += s.items_processed
        for q in self.pipeline.queues:
            total += q.total_put + q.total_get
        return total

    def _work_outstanding(self) -> bool:
        """Anything in flight or queued?  An idle-but-done pipeline is not
        a stall; join() returns and stops the watchdog on its own."""
        for s in self.pipeline.stages:
            if s.inflight():
                return True
        for q in self.pipeline.queues:
            if q.depth() > 0 and not q.closed:
                return True
        return False

    def _run(self) -> None:
        cfg = self.config
        last_progress = self._progress_counter()
        last_progress_t = time.monotonic()
        while not self._stop.wait(cfg.poll_interval):
            now = time.monotonic()

            # -- per-item deadlines ----------------------------------------
            if cfg.item_deadline is not None:
                for stage in self.pipeline.stages:
                    for worker, key, t0, token in stage.inflight():
                        if token is None:
                            continue
                        elapsed = now - t0
                        if elapsed <= cfg.item_deadline:
                            continue
                        if not token.cancelled:
                            token.cancel(
                                f"watchdog: stage {stage.name!r} item {key!r} "
                                f"exceeded {cfg.item_deadline}s deadline "
                                f"({elapsed:.3f}s elapsed)"
                            )
                            self._record(Intervention(
                                stage.name, worker, key, elapsed, "cancelled"
                            ))
                        elif elapsed > cfg.item_deadline * (1.0 + cfg.escalation_grace):
                            # Cancelled long ago and still running: the
                            # handler is not cooperating.  Clean shutdown
                            # beats an eternal join().
                            self._record(Intervention(
                                stage.name, worker, key, elapsed, "escalated"
                            ))
                            self._escalate(
                                "item_hang",
                                f"stage {stage.name!r} item {key!r} ignored "
                                f"cancellation for {elapsed:.3f}s "
                                f"(deadline {cfg.item_deadline}s)",
                            )
                            return

            # -- whole-pipeline stall --------------------------------------
            progress = self._progress_counter()
            if progress != last_progress:
                last_progress = progress
                last_progress_t = now
            elif now - last_progress_t > cfg.stall_timeout:
                if self._work_outstanding():
                    self._escalate(
                        "pipeline_stall",
                        f"no progress for {now - last_progress_t:.3f}s "
                        f"(stall_timeout {cfg.stall_timeout}s) with work "
                        f"outstanding",
                    )
                    return
                # Quiescent with nothing queued: let join() wind us down.
                last_progress_t = now

    def _record(self, intervention: Intervention) -> None:
        with self._lock:
            self.interventions.append(intervention)
        if self.metrics is not None:
            self.metrics.counter(
                f"watchdog.{intervention.action}"
            ).inc()

    def _escalate(self, kind: str, detail: str) -> None:
        now = time.monotonic()
        inflight: dict[str, list[dict]] = {}
        for stage in self.pipeline.stages:
            snap = [
                {"worker": w, "key": k, "elapsed": round(now - t0, 4)}
                for w, k, t0, _tok in stage.inflight()
            ]
            if snap:
                inflight[stage.name] = snap
        progress = {
            "stages": {
                s.name: s.items_processed for s in self.pipeline.stages
            },
            "queues": {
                q.name: {"put": q.total_put, "get": q.total_get,
                         "depth": q.depth()}
                for q in self.pipeline.queues
            },
        }
        with self._lock:
            self._report = StallReport(
                pipeline=self.pipeline.name,
                kind=kind,
                escalated=True,
                detail=detail,
                interventions=list(self.interventions),
                inflight=inflight,
                progress=progress,
            )
        if self.metrics is not None:
            self.metrics.counter("watchdog.escalations").inc()
        # Closing every queue unblocks all workers; stages treat
        # QueueClosed as shutdown, so this is the clean path out.
        self.pipeline.abort()
