"""Write-ahead run journal: append-only, fsync'd, CRC-checked JSONL.

A stitching run's pairwise displacements are independently recomputable
units (the property long-series registration pipelines exploit), so a
journal that records each completed pair makes the whole run resumable: a
killed process restarts, replays the journal, and recomputes only the
pairs that never landed on disk.  The guarantees:

- **append-only**: one JSONL record per event, written under a lock,
  flushed and (by default) fsync'd before the write returns, so a record
  the journal reports as durable survives SIGKILL;
- **CRC-checked**: every line carries a CRC-32 of its canonical payload;
  lines that fail the check are skipped with a counted warning rather
  than poisoning the replay;
- **torn-tail tolerant**: a process killed mid-write leaves a truncated
  final line; replay drops it (counted separately) and the pair it would
  have recorded is simply recomputed;
- **last-write-wins**: duplicate records for the same pair keep the most
  recent value (duplicates are counted);
- **fingerprinted**: the header binds the journal to a dataset and the
  result-affecting options; resuming against a mismatched dataset or
  option set raises :class:`JournalMismatch` instead of silently mixing
  two runs' results.

Record values round-trip exactly: integers are exact in JSON, and Python
serializes floats with ``repr`` semantics (17 significant digits), so a
resumed run's translations are bit-identical to the originals -- the
property the kill-at-any-point acceptance test asserts end to end.
"""

from __future__ import annotations

import io
import json
import math
import os
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

JOURNAL_FILENAME = "journal.jsonl"
JOURNAL_VERSION = 1

#: Keys of :class:`~repro.core.displacement.Translation` fields in a pair
#: record, in serialization order.
_PAIR_FIELDS = ("correlation", "tx", "ty", "tx_f", "ty_f", "peak_ratio",
                "prov")


class JournalError(RuntimeError):
    """The journal file cannot be used (unreadable header, bad mode)."""


class JournalWriteError(JournalError):
    """An append could not be made durable (ENOSPC, EIO, closed fd).

    Raised instead of letting the raw :class:`OSError` escape so a full
    disk mid-run surfaces as a clean, typed per-job failure -- the
    journal file itself stays loadable (at worst one torn tail line,
    which replay already tolerates) and a later resume recovers every
    record that fsync'd before the disk filled.
    """

    def __init__(self, path, cause: OSError):
        super().__init__(
            f"journal append to {path} failed: "
            f"[{cause.errno}] {cause.strerror or cause}"
        )
        self.path = Path(path)
        self.errno = cause.errno
        self.__cause__ = cause


class JournalMismatch(JournalError):
    """Resume refused: the journal belongs to a different run.

    ``differences`` lists ``(path, journal_value, current_value)`` tuples
    naming exactly which fingerprint entries disagree.
    """

    def __init__(self, message: str, differences: list[tuple] | None = None):
        super().__init__(message)
        self.differences = differences or []


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _finite_or_none(value) -> float | None:
    """Optional float for JSON: ``inf``/NaN (a peak ratio with a zero
    runner-up) would serialize as non-standard JSON, so they journal as
    null -- which the quality gate treats as "no ratio recorded"."""
    if value is None:
        return None
    value = float(value)
    return value if math.isfinite(value) else None


def _crc(payload: dict) -> int:
    return zlib.crc32(_canonical(payload).encode("utf-8"))


def _encode_line(payload: dict) -> str:
    rec = dict(payload)
    rec["crc"] = _crc(payload)
    return _canonical(rec) + "\n"


def dataset_fingerprint(dataset) -> dict:
    """Identity of an acquisition: geometry + naming, not pixel bytes.

    Hashing 6+ GB of tiles per resume would defeat the point; the grid
    shape, tile geometry, overlap, bit depth and file pattern identify an
    acquisition for every practical purpose (two different plates with
    identical metadata would resume *structurally* correctly and the CCF
    values would immediately disagree with the journal's).
    """
    meta = dataset.metadata
    return {
        "rows": int(meta.rows),
        "cols": int(meta.cols),
        "tile_height": int(meta.tile_height),
        "tile_width": int(meta.tile_width),
        "overlap": float(meta.overlap),
        "bit_depth": int(meta.bit_depth),
        "pattern": str(meta.pattern),
    }


def options_fingerprint(
    ccf_mode=None,
    n_peaks: int = 2,
    subpixel: bool = False,
    fft_shape=None,
    position_method: str = "mst",
    refine: bool = False,
    coarse=None,
) -> dict:
    """The result-affecting PCIAM/solver options.

    Performance knobs (half-spectrum transforms, tile statistics,
    workspaces, worker counts, implementation choice) are deliberately
    excluded: every implementation and every hot-path mode produces
    identical displacements, so a run checkpointed under one may resume
    under another.  Coarse-to-fine registration *is* fingerprinted
    (``coarse`` takes a :meth:`CoarseConfig.to_fingerprint` dict): its
    refinement probes a subset of the full candidate contest, so its
    correlations are not interchangeable with single-pass values.
    Journals written before the option existed fingerprint-match a
    coarse-off resume (absent key and ``None`` compare equal).
    """
    if coarse is not None and hasattr(coarse, "to_fingerprint"):
        coarse = coarse.to_fingerprint()
    return {
        "ccf_mode": getattr(ccf_mode, "value", ccf_mode),
        "n_peaks": int(n_peaks),
        "subpixel": bool(subpixel),
        "fft_shape": list(fft_shape) if fft_shape is not None else None,
        "position_method": str(position_method),
        "refine": bool(refine),
        "coarse": coarse,
    }


def run_fingerprint(dataset, **options) -> dict:
    return {
        "dataset": dataset_fingerprint(dataset),
        "options": options_fingerprint(**options),
    }


def fingerprint_diff(a: dict, b: dict, prefix: str = "") -> list[tuple]:
    """Recursive ``(path, a_value, b_value)`` list of disagreements."""
    out: list[tuple] = []
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        path = f"{prefix}{key}"
        if isinstance(va, dict) and isinstance(vb, dict):
            out.extend(fingerprint_diff(va, vb, prefix=f"{path}."))
        elif va != vb:
            out.append((path, va, vb))
    return out


@dataclass
class JournalLoadStats:
    """What replaying a journal file found (and survived)."""

    lines: int = 0
    pairs: int = 0
    milestones: int = 0
    skipped_tiles: int = 0
    #: Interior lines whose CRC (or JSON) was invalid -- skipped, counted.
    crc_rejected: int = 0
    #: A truncated/invalid *final* line (torn write at kill time).
    torn_tail: int = 0
    #: Re-recorded pairs (last write won).
    duplicates: int = 0

    def to_dict(self) -> dict:
        return {
            "lines": self.lines,
            "pairs": self.pairs,
            "milestones": self.milestones,
            "skipped_tiles": self.skipped_tiles,
            "crc_rejected": self.crc_rejected,
            "torn_tail": self.torn_tail,
            "duplicates": self.duplicates,
        }


@dataclass
class JournalState:
    """Parsed journal contents (header + accumulated records)."""

    header: dict | None = None
    #: ``(direction, row, col) -> translation-field dict`` (last write wins).
    pairs: dict = field(default_factory=dict)
    #: ``name -> data`` for phase milestones (last write wins).
    milestones: dict = field(default_factory=dict)
    skipped_tiles: dict = field(default_factory=dict)
    stats: JournalLoadStats = field(default_factory=JournalLoadStats)


def load_journal(path: str | Path) -> JournalState:
    """Replay a journal file, tolerating torn tails and corrupt lines."""
    state = JournalState()
    try:
        raw = Path(path).read_bytes()
    except FileNotFoundError:
        return state
    lines = raw.split(b"\n")
    # A well-formed file ends with a newline, leaving one empty trailing
    # chunk; anything else in the last slot is a torn (mid-write) record.
    torn = lines[-1] != b""
    body = lines[:-1]
    for i, line in enumerate(body):
        state.stats.lines += 1
        if not _apply_line(state, line):
            state.stats.crc_rejected += 1
    if torn:
        state.stats.lines += 1
        if _apply_line(state, lines[-1]):
            # Complete record that merely lost its newline: keep it.
            pass
        else:
            state.stats.torn_tail += 1
    return state


def _apply_line(state: JournalState, line: bytes) -> bool:
    """Validate one line and fold it into ``state``; False = rejected."""
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return False
    if not isinstance(obj, dict):
        return False
    crc = obj.pop("crc", None)
    if crc != _crc(obj):
        return False
    kind = obj.get("t")
    if kind == "header":
        state.header = obj
    elif kind == "pair":
        key = (obj["d"], int(obj["r"]), int(obj["c"]))
        if key in state.pairs:
            state.stats.duplicates += 1
        # Replay state uses Translation field names; ``prov`` is only the
        # wire key, so the dicts stay valid ``Translation(**v)`` kwargs.
        pair = {f: obj.get(f) for f in _PAIR_FIELDS if f != "prov"}
        pair["provenance"] = obj.get("prov")
        state.pairs[key] = pair
        state.stats.pairs = len(state.pairs)
    elif kind == "milestone":
        state.milestones[obj["name"]] = obj.get("data", {})
        state.stats.milestones += 1
    elif kind == "tile_skipped":
        state.skipped_tiles[(int(obj["r"]), int(obj["c"]))] = obj.get("error", "")
        state.stats.skipped_tiles = len(state.skipped_tiles)
    # Unknown record kinds are valid (CRC passed) but ignored: a newer
    # writer's journal replays on an older reader.
    return True


class RunJournal:
    """Append-side handle plus the resume state replayed at open time.

    Thread-safe: pipelined implementations append from many compute
    workers concurrently.  Every append is flushed (and fsync'd unless
    ``fsync=False``) before returning, so the durability point is the
    method return -- the invariant the kill harness relies on.
    """

    def __init__(
        self,
        path: str | Path,
        fingerprint: dict,
        state: JournalState,
        fh: io.TextIOBase,
        fsync: bool = True,
        metrics=None,
    ) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.state = state
        self._fh = fh
        self._fsync = fsync
        self._lock = threading.Lock()
        self.metrics = metrics
        #: Pairs served from the journal this run (resume hits).
        self.resumed_pairs = 0
        #: Pairs appended this run.
        self.recorded_pairs = 0
        self._closed = False

    # -- opening -------------------------------------------------------------

    @classmethod
    def create(
        cls, path: str | Path, fingerprint: dict,
        fsync: bool = True, metrics=None,
    ) -> "RunJournal":
        """Start a fresh journal (truncating any existing file).

        The handle is opened in *append* mode (after an explicit
        truncate) rather than ``"w"``: process-parallel backends hand
        out :class:`JournalAppender` writers that append to the same
        file concurrently, and POSIX only guarantees their short writes
        interleave atomically when every writer uses ``O_APPEND`` --
        a positional ``"w"`` handle in the parent would silently
        overwrite worker records.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        open(path, "w", encoding="utf-8").close()  # truncate
        fh = open(path, "a", encoding="utf-8")
        journal = cls(path, fingerprint, JournalState(header=None), fh,
                      fsync=fsync, metrics=metrics)
        journal._append({
            "t": "header", "v": JOURNAL_VERSION, "fingerprint": fingerprint,
        })
        return journal

    @classmethod
    def resume(
        cls, path: str | Path, fingerprint: dict,
        fsync: bool = True, metrics=None,
    ) -> "RunJournal":
        """Open an existing journal for resumption; strict about identity.

        Raises :class:`JournalError` when the file is missing or has no
        readable header, :class:`JournalMismatch` when the header's
        fingerprint disagrees with the current run's.
        """
        path = Path(path)
        if not path.exists():
            raise JournalError(f"no journal to resume at {path}")
        state = load_journal(path)
        if state.header is None:
            raise JournalError(
                f"journal {path} has no readable header "
                f"({state.stats.crc_rejected} rejected, "
                f"{state.stats.torn_tail} torn line(s))"
            )
        recorded = state.header.get("fingerprint", {})
        diffs = fingerprint_diff(recorded, fingerprint)
        if diffs:
            detail = "; ".join(
                f"{p}: journal={a!r} run={b!r}" for p, a, b in diffs[:6]
            )
            raise JournalMismatch(
                f"journal {path} belongs to a different run ({detail})",
                differences=diffs,
            )
        fh = open(path, "a", encoding="utf-8")
        journal = cls(path, fingerprint, state, fh, fsync=fsync, metrics=metrics)
        if metrics is not None:
            if state.stats.crc_rejected:
                metrics.counter("journal.crc_rejected").inc(
                    state.stats.crc_rejected)
            if state.stats.torn_tail:
                metrics.counter("journal.torn_tail").inc(state.stats.torn_tail)
        return journal

    @classmethod
    def open(
        cls, path: str | Path, fingerprint: dict,
        fsync: bool = True, metrics=None, resume: str = "auto",
    ) -> "RunJournal":
        """Checkpoint-directory entry point.

        ``resume="auto"``
            resume when a journal with a matching header exists; start
            fresh when the file is absent or its header never landed
            (killed during the very first write); still *refuse* a
            mismatched header -- silently discarding a different run's
            journal is how checkpoints eat data.
        ``resume="require"``
            the ``--resume`` flag: missing/unreadable journal is an error.
        ``resume="never"``
            always start fresh (truncates).
        """
        if resume not in ("auto", "require", "never"):
            raise ValueError(f"resume must be auto/require/never, got {resume!r}")
        path = Path(path)
        if resume == "never":
            return cls.create(path, fingerprint, fsync=fsync, metrics=metrics)
        if resume == "require":
            return cls.resume(path, fingerprint, fsync=fsync, metrics=metrics)
        if not path.exists():
            return cls.create(path, fingerprint, fsync=fsync, metrics=metrics)
        state = load_journal(path)
        if state.header is None:
            # Nothing durable ever landed: treat as a fresh run.
            return cls.create(path, fingerprint, fsync=fsync, metrics=metrics)
        return cls.resume(path, fingerprint, fsync=fsync, metrics=metrics)

    # -- appending -----------------------------------------------------------

    def _append(self, payload: dict) -> None:
        if self._closed:
            raise JournalError(f"journal {self.path} is closed")
        line = _encode_line(payload)
        with self._lock:
            try:
                self._fh.write(line)
                self._fh.flush()
                if self._fsync:
                    os.fsync(self._fh.fileno())
            except OSError as exc:
                # ENOSPC (or EIO) mid-run: the record is NOT durable.
                # Surface a typed error the caller can treat as a clean
                # job failure; the file holds at most a torn tail, which
                # load_journal() already drops, so resume stays safe.
                raise JournalWriteError(self.path, exc) from exc

    def record_pair(self, direction: str, row: int, col: int, t) -> None:
        """Journal one completed pairwise displacement (durable on return)."""
        rec = {
            "t": "pair", "d": str(direction), "r": int(row), "c": int(col),
            "correlation": float(t.correlation),
            "tx": int(t.tx), "ty": int(t.ty),
            "tx_f": None if t.tx_f is None else float(t.tx_f),
            "ty_f": None if t.ty_f is None else float(t.ty_f),
            "peak_ratio": _finite_or_none(t.peak_ratio),
        }
        # Registration provenance ("coarse"/"fallback") journals only when
        # set, so single-pass journals stay byte-identical to pre-coarse
        # writers and resume cleanly on older readers.
        prov = getattr(t, "provenance", None)
        if prov is not None:
            rec["prov"] = str(prov)
        self._append(rec)
        self.recorded_pairs += 1
        if self.metrics is not None:
            self.metrics.counter("journal.pairs_recorded").inc()

    def record_skipped_tile(self, row: int, col: int, error: str = "") -> None:
        self._append({
            "t": "tile_skipped", "r": int(row), "c": int(col),
            "error": str(error)[:200],
        })

    def record_milestone(self, name: str, **data: Any) -> None:
        """Journal a phase boundary (phase1 complete, phase2 solved, ...)."""
        self._append({"t": "milestone", "name": str(name), "data": data})
        if self.metrics is not None:
            self.metrics.counter("journal.milestones").inc()

    # -- resume lookups --------------------------------------------------------

    def lookup(self, direction: str, row: int, col: int):
        """Journaled :class:`Translation` for a pair, or ``None``.

        A hit means the pair's displacement was computed and made durable
        by a previous (possibly killed) run; the caller skips recomputing
        it.  Hits are counted (``resumed_pairs`` / the
        ``journal.pairs_resumed`` metric) so tests can assert a resumed
        run recomputed *only* the un-journaled remainder.
        """
        rec = self.state.pairs.get((str(direction), int(row), int(col)))
        if rec is None:
            return None
        from repro.core.displacement import Translation

        self.resumed_pairs += 1
        if self.metrics is not None:
            self.metrics.counter("journal.pairs_resumed").inc()
        return Translation(
            correlation=rec["correlation"], tx=rec["tx"], ty=rec["ty"],
            tx_f=rec["tx_f"], ty_f=rec["ty_f"],
            # Journals written before the quality gate existed have no
            # peak_ratio key; they replay with the gate-neutral None.
            peak_ratio=rec.get("peak_ratio"),
            provenance=rec.get("provenance"),
        )

    def milestone(self, name: str) -> dict | None:
        return self.state.milestones.get(name)

    def appender_spec(self) -> tuple[str, bool]:
        """Picklable ``(path, fsync)`` for worker-side :class:`JournalAppender`s."""
        return (str(self.path), self._fsync)

    def note_worker_pairs(self, n: int) -> None:
        """Fold worker-appended pair counts into this handle's accounting."""
        self.recorded_pairs += int(n)
        if self.metrics is not None and n:
            self.metrics.counter("journal.pairs_recorded").inc(int(n))

    @property
    def journaled_pair_count(self) -> int:
        return len(self.state.pairs)

    def summary(self) -> dict:
        """JSON-able accounting for ``StitchResult.stats["journal"]``."""
        return {
            "path": str(self.path),
            "resumed_pairs": self.resumed_pairs,
            "recorded_pairs": self.recorded_pairs,
            "load": self.state.stats.to_dict(),
        }

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        with self._lock:
            self._fh.flush()
            try:
                os.fsync(self._fh.fileno())
            except (OSError, ValueError):  # pragma: no cover - defensive
                pass
            self._fh.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class JournalAppender:
    """Append-only pair-record writer for process workers.

    Workers in the ``proc-cpu`` backend journal each completed pair from
    their own process.  They cannot share the parent's
    :class:`RunJournal` handle (its lock is per-process and its buffered
    file position is not), but they *can* safely share the file: every
    appender opens the journal with ``O_APPEND``, and POSIX guarantees
    that appends smaller than ``PIPE_BUF`` (4096 bytes -- our records are
    ~150 bytes) land atomically at the end of the file, never interleaved
    byte-wise with another writer's record.  The parent replays nothing
    from workers; it re-counts recorded pairs from its own merge, so the
    appender is fire-and-forget durable output only.

    Construct with :meth:`RunJournal.appender_spec` output, or directly
    from a path in an already-running worker.
    """

    def __init__(self, path: str | Path, fsync: bool = True) -> None:
        self.path = Path(path)
        self._fsync = fsync
        self._fh = open(self.path, "a", encoding="utf-8")
        self.recorded_pairs = 0

    def _append(self, payload: dict) -> None:
        line = _encode_line(payload)
        try:
            self._fh.write(line)
            self._fh.flush()
            if self._fsync:
                os.fsync(self._fh.fileno())
        except OSError as exc:
            raise JournalWriteError(self.path, exc) from exc

    def record_pair(self, direction: str, row: int, col: int, t) -> None:
        """Journal one completed pair (durable on return)."""
        rec = {
            "t": "pair", "d": str(direction), "r": int(row), "c": int(col),
            "correlation": float(t.correlation),
            "tx": int(t.tx), "ty": int(t.ty),
            "tx_f": None if t.tx_f is None else float(t.tx_f),
            "ty_f": None if t.ty_f is None else float(t.ty_f),
            "peak_ratio": _finite_or_none(t.peak_ratio),
        }
        prov = getattr(t, "provenance", None)
        if prov is not None:
            rec["prov"] = str(prov)
        self._append(rec)
        self.recorded_pairs += 1

    def record_skipped_tile(self, row: int, col: int, error: str = "") -> None:
        self._append({
            "t": "tile_skipped", "r": int(row), "c": int(col),
            "error": str(error)[:200],
        })

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:  # pragma: no cover - defensive
            pass

    def __enter__(self) -> "JournalAppender":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def checkpoint_journal_path(checkpoint_dir: str | Path) -> Path:
    """The canonical journal location inside a ``--checkpoint`` directory."""
    return Path(checkpoint_dir) / JOURNAL_FILENAME
