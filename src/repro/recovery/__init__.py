"""Durable-run machinery: checkpoint/resume journal, cancellation, watchdog.

Three pillars (see ``docs/ROBUSTNESS.md``):

- :mod:`repro.recovery.journal` -- append-only, fsync'd, CRC-checked run
  journal making a killed stitch resumable at pairwise-displacement
  granularity;
- :mod:`repro.recovery.cancel` -- cooperative per-item cancellation
  tokens (Python threads cannot be interrupted);
- :mod:`repro.recovery.watchdog` -- supervision thread detecting hung
  items and whole-pipeline stalls, escalating to clean shutdown with a
  structured :class:`StallReport`;
- :mod:`repro.recovery.harness` -- subprocess SIGKILL harness proving the
  kill-at-any-point resume guarantee end to end.
"""

from repro.recovery.cancel import (
    CancelToken,
    ItemCancelled,
    checkpoint_cancelled,
    current_token,
    install_token,
)
from repro.recovery.harness import (
    KillResult,
    count_journal_records,
    run_until_killed,
    stitch_argv,
    subprocess_env,
)
from repro.recovery.journal import (
    JOURNAL_FILENAME,
    JournalError,
    JournalLoadStats,
    JournalMismatch,
    JournalState,
    JournalWriteError,
    RunJournal,
    checkpoint_journal_path,
    dataset_fingerprint,
    fingerprint_diff,
    load_journal,
    options_fingerprint,
    run_fingerprint,
)
from repro.recovery.watchdog import (
    Intervention,
    StallReport,
    Watchdog,
    WatchdogConfig,
)

__all__ = [
    "CancelToken",
    "ItemCancelled",
    "checkpoint_cancelled",
    "current_token",
    "install_token",
    "KillResult",
    "count_journal_records",
    "run_until_killed",
    "stitch_argv",
    "subprocess_env",
    "JOURNAL_FILENAME",
    "JournalError",
    "JournalLoadStats",
    "JournalMismatch",
    "JournalState",
    "JournalWriteError",
    "RunJournal",
    "checkpoint_journal_path",
    "dataset_fingerprint",
    "fingerprint_diff",
    "load_journal",
    "options_fingerprint",
    "run_fingerprint",
    "Intervention",
    "StallReport",
    "Watchdog",
    "WatchdogConfig",
]
