"""Cooperative cancellation tokens for in-flight work items.

Python threads cannot be interrupted, so the watchdog's "cancel that hung
item" operation is *cooperative*: every pipeline stage installs a
:class:`CancelToken` for the item it is currently processing, and any code
running under that item -- injected hang faults, pool-acquire loops, long
host computations -- can poll :func:`current_token` and bail out with
:class:`ItemCancelled` once the watchdog has flagged the item.

The token is a plain boolean flag (no :class:`threading.Event`): setting
and reading it are GIL-atomic, and the hot path -- one token per stage
item -- must stay allocation-light so an enabled-but-idle watchdog costs
nothing measurable.
"""

from __future__ import annotations

import threading
import time


class ItemCancelled(Exception):
    """The current work item was cancelled (typically by the watchdog).

    Raised from *inside* a handler by cooperative code that polls the
    item's :class:`CancelToken`.  Stage error policies treat it like any
    other failure: retried attempts see the already-cancelled token and
    fail fast, so a skip/degrade policy drops the item promptly.
    """


class CancelToken:
    """Per-item cancellation flag with optional bookkeeping fields."""

    __slots__ = ("cancelled", "reason")

    def __init__(self) -> None:
        self.cancelled = False
        self.reason: str | None = None

    def cancel(self, reason: str | None = None) -> None:
        """Flag the item as cancelled; idempotent (first reason wins)."""
        if not self.cancelled:
            self.reason = reason
            self.cancelled = True

    def raise_if_cancelled(self) -> None:
        if self.cancelled:
            raise ItemCancelled(self.reason or "item cancelled")

    def sleep(self, seconds: float, poll: float = 0.002) -> None:
        """Sleep in short slices, raising :class:`ItemCancelled` promptly.

        The cooperative analogue of ``time.sleep`` for code that may be
        supervised: a watchdog cancellation interrupts the wait within
        ``poll`` seconds instead of after the full duration.
        """
        deadline = time.monotonic() + seconds
        while True:
            self.raise_if_cancelled()
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return
            time.sleep(min(poll, remaining))


_tls = threading.local()


def current_token() -> CancelToken | None:
    """The cancel token of the item the calling thread is processing."""
    return getattr(_tls, "token", None)


def install_token(token: CancelToken | None) -> CancelToken | None:
    """Install ``token`` for the calling thread; returns the previous one.

    Used as a manual push/pop pair by the stage worker loop (a context
    manager would allocate a generator per item on the hot path)::

        prev = install_token(token)
        try:
            handler(item, ctx)
        finally:
            install_token(prev)
    """
    prev = getattr(_tls, "token", None)
    _tls.token = token
    return prev


def checkpoint_cancelled() -> None:
    """Raise :class:`ItemCancelled` if the current item was cancelled.

    Convenience for long loops deep inside handlers: call this at safe
    points; it is a no-op when no token is installed (sequential,
    unsupervised execution).
    """
    tok = current_token()
    if tok is not None:
        tok.raise_if_cancelled()
