"""Fault injection, retry policies and graceful degradation.

Three layers (see ``docs/API.md`` -- "Failure handling"):

1. :class:`FaultPlan` -- deterministic, seedable injection of missing /
   corrupt / transient-I/O / slow tile reads, stage handler faults and
   simulated buffer-pool exhaustion;
2. :class:`~repro.pipeline.stage.ErrorPolicy` -- per-stage retry with
   deterministic backoff and an abort/skip/degrade disposition (lives in
   :mod:`repro.pipeline`, re-exported here for convenience);
3. :class:`FaultReport` -- the structured record of what was retried,
   skipped and degraded, attached to ``StitchResult.stats``.
"""

from repro.faults.plan import (
    Fault,
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultyDataset,
    FaultyPool,
)
from repro.faults.report import FaultReport
from repro.pipeline.stage import DroppedItem, ErrorPolicy, run_with_retries

__all__ = [
    "Fault",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "FaultyDataset",
    "FaultyPool",
    "FaultReport",
    "DroppedItem",
    "ErrorPolicy",
    "run_with_retries",
]
