"""Deterministic, seedable fault injection.

A :class:`FaultPlan` is a list of :class:`Fault` specs plus trigger
bookkeeping.  It damages a run *without touching the files on disk* by
wrapping the surfaces the paper's pipeline touches:

- :meth:`FaultPlan.wrap_dataset` proxies ``TileDataset.load`` to inject
  missing files (``FileNotFoundError``), corrupt bytes
  (:class:`~repro.io.tiff.TiffError`, raised from the decoder on a
  truncated copy of the real bytes), transient ``IOError`` s that succeed
  after ``failures`` attempts, and slow reads (latency spikes);
- :meth:`FaultPlan.wrap_handler` makes a named pipeline stage raise for
  its first ``failures`` invocations;
- :meth:`FaultPlan.wrap_pool` makes a transform pool (host
  :class:`~repro.memmodel.pool.BufferPool` or the GPU
  ``DevicePool``) report exhaustion for its first ``failures`` acquires,
  simulating GPU buffer-pool pressure.

Every trigger is recorded as a :class:`FaultEvent`, and all trigger
decisions are deterministic (per-tile attempt counters, no clocks or
RNG at injection time), so a seeded plan plus a fixed dataset replays
bit-identically -- the property the CI smoke job and the acceptance
tests rely on.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from random import Random
from typing import Any

import numpy as np

from repro.io.tiff import TiffError
from repro.memmodel.pool import PoolExhausted


class FaultKind(str, Enum):
    MISSING = "missing"            # tile file absent
    CORRUPT = "corrupt"            # tile bytes truncated -> TiffError
    TRANSIENT_IO = "transient_io"  # IOError for the first N attempts
    SLOW_READ = "slow_read"        # latency spike on read
    POOL_EXHAUSTED = "pool_exhausted"  # transform pool acquire fails
    STAGE_ERROR = "stage_error"    # handler exception in a named stage
    HANG = "hang"                  # operation blocks until cancelled (or a bound)
    STALL = "stall"                # named stage silently swallows items
    #: Process suicide: the first ``failures`` reads of the target tile
    #: SIGKILL the *current process* -- how the chaos harness makes a
    #: specific job deterministically kill every worker it lands on
    #: (poison input), as opposed to the harness's externally timed kills.
    CRASH = "crash"
    # Data-level kinds (docs/ROBUSTNESS.md): the read *succeeds* but the
    # pixels mislead registration -- the class of dirty data the
    # phase-2 quality gate exists for.
    DUST = "dust"                  # occluding blobs -> overlap contents disagree
    SATURATE = "saturate"          # blown-out exposure -> featureless overlap
    SHIFT = "shift"                # content shifted -> confident wrong offset


#: Per-kind RNG stream salt so a tile damaged by several data faults
#: draws independent randomness for each.
_DATA_KIND_SALT = {
    FaultKind.DUST: 101,
    FaultKind.SATURATE: 102,
    FaultKind.SHIFT: 103,
}


@dataclass(frozen=True)
class Fault:
    """One injected fault.

    ``tile`` addresses tile-scoped kinds; ``stage`` addresses
    :data:`FaultKind.STAGE_ERROR`, :data:`FaultKind.STALL` and
    stage-scoped :data:`FaultKind.HANG`; ``failures`` is how many
    attempts fail before the operation succeeds (transient kinds) --
    permanent kinds (missing/corrupt) fail every attempt regardless;
    ``latency`` is the injected delay in seconds for
    :data:`FaultKind.SLOW_READ`, and for :data:`FaultKind.HANG` the
    upper bound on the hang (0 = hang until cooperatively cancelled).
    """

    kind: FaultKind
    tile: tuple[int, int] | None = None
    stage: str | None = None
    failures: int = 1
    latency: float = 0.0


@dataclass
class FaultEvent:
    """A fault actually firing (one per failed/delayed attempt)."""

    kind: FaultKind
    tile: tuple[int, int] | None
    stage: str | None
    attempt: int


@dataclass
class FaultPlan:
    """A deterministic set of faults plus trigger bookkeeping."""

    faults: list[Fault] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._attempts: dict[tuple, int] = {}
        self.events: list[FaultEvent] = []

    # -- construction --------------------------------------------------------

    def add(self, fault: Fault) -> "FaultPlan":
        self.faults.append(fault)
        return self

    @staticmethod
    def random(
        rows: int,
        cols: int,
        seed: int = 0,
        missing: int = 1,
        corrupt: int = 1,
        transient: int = 2,
        slow: int = 1,
        latency: float = 0.02,
    ) -> "FaultPlan":
        """Seeded plan over distinct random tiles of a ``rows x cols`` grid.

        Tile ``(0, 0)`` is never damaged: phase 2 anchors the mosaic
        there, and real acquisitions rarely lose the very first tile the
        operator watched being captured.
        """
        rng = Random(seed)
        candidates = [
            (r, c) for r in range(rows) for c in range(cols) if (r, c) != (0, 0)
        ]
        need = missing + corrupt + transient + slow
        if need > len(candidates):
            raise ValueError(
                f"{need} faults requested but only {len(candidates)} tiles "
                f"available on a {rows}x{cols} grid"
            )
        picked = rng.sample(candidates, need)
        plan = FaultPlan(seed=seed)
        i = 0
        for _ in range(missing):
            plan.add(Fault(FaultKind.MISSING, tile=picked[i])); i += 1
        for _ in range(corrupt):
            plan.add(Fault(FaultKind.CORRUPT, tile=picked[i])); i += 1
        for _ in range(transient):
            plan.add(Fault(FaultKind.TRANSIENT_IO, tile=picked[i], failures=1)); i += 1
        for _ in range(slow):
            plan.add(Fault(FaultKind.SLOW_READ, tile=picked[i], latency=latency)); i += 1
        return plan

    _SPEC_TILE_KINDS = {
        "missing": FaultKind.MISSING,
        "corrupt": FaultKind.CORRUPT,
        "transient": FaultKind.TRANSIENT_IO,
        "slow": FaultKind.SLOW_READ,
        "hang": FaultKind.HANG,
        "crash": FaultKind.CRASH,
        "dust": FaultKind.DUST,
        "saturate": FaultKind.SATURATE,
        "shift": FaultKind.SHIFT,
    }
    _SPEC_STAGE_KINDS = {
        "stall": FaultKind.STALL,
        "stage_error": FaultKind.STAGE_ERROR,
    }

    @classmethod
    def from_spec(cls, spec: str, rows: int, cols: int) -> "FaultPlan":
        """Parse a ``SEED[:key=value,...]`` fault spec into a seeded plan.

        A bare integer (``"42"``) keeps the historical
        ``--inject-faults SEED`` behaviour: the default :meth:`random`
        mix.  The extended form names explicit counts per kind, so a
        test can damage a run with exactly the failure mode it is
        exercising::

            42:missing=1,transient=2      # only these two kinds
            7:hang=1,latency=0.5          # one read hangs for <= 0.5 s
            7:hang=1,latency=0            # ... hangs until cancelled
            11:stall=3,stage=compute      # compute stage swallows 3 items

        Keys ``missing``/``corrupt``/``transient``/``slow``/``hang``
        are tile-scoped counts (tiles drawn like :meth:`random`);
        ``stall``/``stage_error`` are stage-scoped counts of swallowed /
        failing attempts; ``latency`` (seconds) sets the slow-read delay
        and the hang bound; ``stage`` names the target stage for the
        stage-scoped kinds (default ``"compute"``).
        """
        head, sep, rest = spec.partition(":")
        try:
            seed = int(head)
        except ValueError:
            raise ValueError(
                f"fault spec must start with an integer seed: {spec!r}"
            ) from None
        if not sep:
            return cls.random(rows, cols, seed=seed)

        counts: dict[str, int] = {}
        latency = 0.02
        stage = "compute"
        for item in rest.split(","):
            item = item.strip()
            if not item:
                continue
            key, eq, value = item.partition("=")
            if not eq:
                raise ValueError(f"expected key=value in fault spec: {item!r}")
            if key == "latency":
                latency = float(value)
            elif key == "stage":
                stage = value
            elif key in cls._SPEC_TILE_KINDS or key in cls._SPEC_STAGE_KINDS:
                counts[key] = int(value)
            else:
                raise ValueError(
                    f"unknown fault-spec key {key!r} (known: "
                    f"{', '.join(sorted({*cls._SPEC_TILE_KINDS, *cls._SPEC_STAGE_KINDS, 'latency', 'stage'}))})"
                )

        rng = Random(seed)
        candidates = [
            (r, c) for r in range(rows) for c in range(cols) if (r, c) != (0, 0)
        ]
        need = sum(n for k, n in counts.items() if k in cls._SPEC_TILE_KINDS)
        if need > len(candidates):
            raise ValueError(
                f"{need} tile faults requested but only {len(candidates)} "
                f"tiles available on a {rows}x{cols} grid"
            )
        picked = rng.sample(candidates, need)
        plan = cls(seed=seed)
        i = 0
        for key, kind in cls._SPEC_TILE_KINDS.items():
            for _ in range(counts.get(key, 0)):
                plan.add(Fault(kind, tile=picked[i], latency=latency))
                i += 1
        for key, kind in cls._SPEC_STAGE_KINDS.items():
            n = counts.get(key, 0)
            if n > 0:
                plan.add(Fault(kind, stage=stage, failures=n, latency=latency))
        return plan

    # -- bookkeeping ---------------------------------------------------------

    def reset(self) -> None:
        """Clear trigger state so the same plan can replay a fresh run."""
        with self._lock:
            self._attempts.clear()
            self.events.clear()

    def _record(self, fault: Fault, attempt: int) -> None:
        self.events.append(
            FaultEvent(fault.kind, fault.tile, fault.stage, attempt)
        )

    def _next_attempt(self, key: tuple) -> int:
        """Post-increment the per-fault attempt counter (caller holds lock)."""
        n = self._attempts.get(key, 0)
        self._attempts[key] = n + 1
        return n

    def summary(self) -> dict[str, int]:
        """Planned faults by kind (what *should* fire at least once)."""
        out: dict[str, int] = {}
        for f in self.faults:
            out[f.kind.value] = out.get(f.kind.value, 0) + 1
        return out

    def triggered_summary(self) -> dict[str, int]:
        """Events that actually fired, by kind."""
        with self._lock:
            out: dict[str, int] = {}
            for e in self.events:
                out[e.kind.value] = out.get(e.kind.value, 0) + 1
            return out

    def faults_for_tile(self, row: int, col: int) -> list[Fault]:
        return [f for f in self.faults if f.tile == (row, col)]

    _STAGE_KINDS = (FaultKind.STAGE_ERROR, FaultKind.HANG, FaultKind.STALL)

    def faults_for_stage(self, stage: str) -> list[Fault]:
        return [
            f for f in self.faults
            if f.kind in self._STAGE_KINDS and f.stage == stage
        ]

    # -- wrapping ------------------------------------------------------------

    def wrap_dataset(self, dataset) -> "FaultyDataset":
        """Proxy ``dataset`` so ``load`` injects this plan's tile faults."""
        return FaultyDataset(dataset, self)

    def wrap_handler(self, stage: str, handler):
        """Wrap a pipeline stage handler with this plan's stage faults."""
        stage_faults = self.faults_for_stage(stage)
        if not stage_faults:
            return handler

        def wrapped(item, ctx):
            for fault in stage_faults:
                with self._lock:
                    attempt = self._next_attempt((id(fault), "stage"))
                    fire = attempt < fault.failures
                    if fire:
                        self._record(fault, attempt)
                if not fire:
                    continue
                if fault.kind is FaultKind.STAGE_ERROR:
                    raise RuntimeError(
                        f"injected stage fault in {stage!r} "
                        f"(attempt {attempt + 1}/{fault.failures})"
                    )
                if fault.kind is FaultKind.STALL:
                    # Swallow the item: downstream never hears about it,
                    # which is exactly the silent wedge the watchdog's
                    # pipeline-stall detector exists to catch.
                    return None
                if fault.kind is FaultKind.HANG:
                    self._hang(fault.latency)
            return handler(item, ctx)

        return wrapped

    def wrap_pool(self, pool) -> "FaultyPool":
        """Proxy a buffer pool so early acquires report exhaustion."""
        return FaultyPool(pool, self)

    # -- injection core (used by the proxies) --------------------------------

    @staticmethod
    def _hang(bound: float, poll: float = 0.005) -> None:
        """Block, polling the installed cancel token so a watchdog can
        break the hang; ``bound`` caps the wait (0 = until cancelled)."""
        from repro.recovery.cancel import current_token

        deadline = time.monotonic() + bound if bound > 0 else None
        while deadline is None or time.monotonic() < deadline:
            token = current_token()
            if token is not None:
                token.raise_if_cancelled()
            time.sleep(poll)

    def before_load(self, row: int, col: int, path) -> None:
        """Raise/delay per the plan; called before a real tile read."""
        for fault in self.faults_for_tile(row, col):
            if fault.kind is FaultKind.MISSING:
                with self._lock:
                    attempt = self._next_attempt((id(fault), row, col))
                    self._record(fault, attempt)
                raise FileNotFoundError(f"injected missing tile: {path}")
            if fault.kind is FaultKind.CORRUPT:
                with self._lock:
                    attempt = self._next_attempt((id(fault), row, col))
                    self._record(fault, attempt)
                raise TiffError(
                    f"injected corrupt tile ({row},{col}): truncated file "
                    f"while reading strip data"
                )
            if fault.kind is FaultKind.TRANSIENT_IO:
                with self._lock:
                    attempt = self._next_attempt((id(fault), row, col))
                    fire = attempt < fault.failures
                    if fire:
                        self._record(fault, attempt)
                if fire:
                    raise IOError(
                        f"injected transient I/O error on tile ({row},{col}) "
                        f"(attempt {attempt + 1}/{fault.failures})"
                    )
            if fault.kind is FaultKind.SLOW_READ:
                with self._lock:
                    attempt = self._next_attempt((id(fault), row, col))
                    self._record(fault, attempt)
                if fault.latency > 0:
                    time.sleep(fault.latency)
            if fault.kind is FaultKind.HANG:
                with self._lock:
                    attempt = self._next_attempt((id(fault), row, col))
                    fire = attempt < fault.failures
                    if fire:
                        self._record(fault, attempt)
                if fire:
                    self._hang(fault.latency)
            if fault.kind is FaultKind.CRASH:
                # Attempt counting keeps this deterministic *and* finite:
                # with failures=N the tile kills its host process N times,
                # then reads cleanly -- a transiently-poison job; with a
                # large N it is poison forever and earns quarantine.
                with self._lock:
                    attempt = self._next_attempt((id(fault), row, col))
                    fire = attempt < fault.failures
                    if fire:
                        self._record(fault, attempt)
                if fire:
                    import os as _os
                    import signal as _signal

                    _os.kill(_os.getpid(), _signal.SIGKILL)

    _DATA_KINDS = (FaultKind.DUST, FaultKind.SATURATE, FaultKind.SHIFT)

    def transform_tile(self, row: int, col: int, pixels, level: float):
        """Apply this plan's data-level faults to freshly read pixels.

        Called by :class:`FaultyDataset` *after* a successful read;
        returns the (possibly damaged) pixel array.  ``level`` is the
        sensor full-scale count saturation clips to.  Damage is a pure
        function of ``(plan seed, tile index, fault kind)``, so repeated
        reads of the same tile -- retries, band-partitioned
        implementations, resumed runs -- see identical pixels.
        """
        from repro.synth.noise import (
            apply_content_shift,
            apply_dust,
            apply_saturation,
        )

        for fault in self.faults_for_tile(row, col):
            if fault.kind not in self._DATA_KINDS:
                continue
            with self._lock:
                attempt = self._next_attempt((id(fault), row, col))
                self._record(fault, attempt)
            rng = np.random.default_rng(
                (self.seed, row, col, _DATA_KIND_SALT[fault.kind])
            )
            if fault.kind is FaultKind.DUST:
                pixels = apply_dust(pixels, rng)
            elif fault.kind is FaultKind.SATURATE:
                pixels = apply_saturation(pixels, level)
            elif fault.kind is FaultKind.SHIFT:
                pixels = apply_content_shift(pixels, rng)
        return pixels

    def before_acquire(self) -> None:
        """Raise :class:`PoolExhausted` per pending pool faults."""
        for fault in self.faults:
            if fault.kind is not FaultKind.POOL_EXHAUSTED:
                continue
            with self._lock:
                attempt = self._next_attempt((id(fault), "pool"))
                fire = attempt < fault.failures
                if fire:
                    self._record(fault, attempt)
            if fire:
                raise PoolExhausted(
                    f"injected pool exhaustion "
                    f"(attempt {attempt + 1}/{fault.failures})"
                )


class FaultyDataset:
    """Transparent :class:`~repro.io.dataset.TileDataset` proxy.

    Everything delegates to the wrapped dataset except :meth:`load`, which
    consults the plan first.  The plan is exposed as ``fault_plan`` so the
    stitcher can fold the injection summary into its fault report.
    """

    def __init__(self, dataset, plan: FaultPlan) -> None:
        self._dataset = dataset
        self.fault_plan = plan

    def __getattr__(self, name: str) -> Any:
        return getattr(self._dataset, name)

    def __len__(self) -> int:
        return len(self._dataset)

    def load(self, row: int, col: int, dtype=None, **kw):
        self.fault_plan.before_load(row, col, self._dataset.path(row, col))
        if dtype is None:
            pixels = self._dataset.load(row, col, **kw)
        else:
            pixels = self._dataset.load(row, col, dtype=dtype, **kw)
        if not any(
            f.kind in FaultPlan._DATA_KINDS and f.tile == (row, col)
            for f in self.fault_plan.faults
        ):
            return pixels
        # Data-level damage rides on top of the real read; the saturation
        # level is the acquisition's full-scale count so the clip lands
        # at the same value whatever dtype the caller asked for.
        meta = getattr(self._dataset, "metadata", None)
        bit_depth = int(getattr(meta, "bit_depth", 16) or 16)
        level = float((1 << bit_depth) - 1)
        return self.fault_plan.transform_tile(row, col, pixels, level)


class FaultyPool:
    """Buffer-pool proxy injecting :class:`PoolExhausted` on early acquires.

    Works for both the host :class:`~repro.memmodel.pool.BufferPool` and
    the GPU ``DevicePool`` (same acquire/release/array surface).
    """

    def __init__(self, pool, plan: FaultPlan) -> None:
        self._pool = pool
        self.fault_plan = plan

    def __getattr__(self, name: str) -> Any:
        return getattr(self._pool, name)

    def acquire(self, *args, **kw):
        self.fault_plan.before_acquire()
        return self._pool.acquire(*args, **kw)
