"""Structured accounting of what went wrong (and was survived) in a run.

A :class:`FaultReport` is threaded through the three phases whenever a
retry/skip policy is active: phase 1 records retried reads and
skipped tiles/pairs, phase 2 records tiles degraded to nominal stage
coordinates, and the :class:`~repro.core.stitcher.Stitcher` attaches the
report to ``StitchResult.stats["fault_report"]``.  Fault-injection tests
close the loop by comparing the report against the
:class:`~repro.faults.plan.FaultPlan` that produced the damage.
"""

from __future__ import annotations

import threading
from typing import Any


class FaultReport:
    """Thread-safe record of retries, skips and degradations.

    All ``record_*`` methods may be called concurrently from pipeline
    workers.  Tiles and pairs are de-duplicated: ghost tiles in
    partitioned implementations are read by two pipelines and may fail
    twice, but they are one fault.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._retries: list[dict[str, Any]] = []
        self._skipped_tiles: dict[tuple[int, int], str] = {}
        self._skipped_pairs: dict[tuple[str, int, int], str] = {}
        self._degraded_tiles: set[tuple[int, int]] = set()
        #: Summary of the injection plan that produced the damage, when
        #: the dataset was wrapped by a FaultPlan (None for real faults).
        self.injected: dict[str, int] | None = None

    # -- recording ----------------------------------------------------------

    def record_retry(self, stage: str, item: Any, attempt: int,
                     error: BaseException) -> None:
        with self._lock:
            self._retries.append({
                "stage": stage,
                "item": repr(item),
                "attempt": attempt,
                "error": f"{type(error).__name__}: {error}",
            })

    def record_skipped_tile(self, tile: tuple[int, int],
                            error: BaseException) -> None:
        with self._lock:
            self._skipped_tiles.setdefault(
                (int(tile[0]), int(tile[1])),
                f"{type(error).__name__}: {error}",
            )

    def record_skipped_pair(self, direction: str, row: int, col: int,
                            reason: str = "") -> None:
        with self._lock:
            self._skipped_pairs.setdefault(
                (str(direction), int(row), int(col)), reason
            )

    def record_degraded_tile(self, tile: tuple[int, int]) -> None:
        with self._lock:
            self._degraded_tiles.add((int(tile[0]), int(tile[1])))

    # -- views --------------------------------------------------------------

    @property
    def retries(self) -> list[dict[str, Any]]:
        with self._lock:
            return list(self._retries)

    @property
    def skipped_tiles(self) -> list[tuple[int, int]]:
        with self._lock:
            return sorted(self._skipped_tiles)

    @property
    def skipped_pairs(self) -> list[tuple[str, int, int]]:
        with self._lock:
            return sorted(self._skipped_pairs)

    @property
    def degraded_tiles(self) -> list[tuple[int, int]]:
        with self._lock:
            return sorted(self._degraded_tiles)

    def __bool__(self) -> bool:
        with self._lock:
            return bool(
                self._retries or self._skipped_tiles
                or self._skipped_pairs or self._degraded_tiles
            )

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly summary for ``StitchResult.stats``."""
        with self._lock:
            out: dict[str, Any] = {
                "retries": len(self._retries),
                "retried_items": [dict(r) for r in self._retries],
                "skipped_tiles": sorted(self._skipped_tiles),
                "skipped_tile_errors": {
                    f"{r},{c}": msg
                    for (r, c), msg in sorted(self._skipped_tiles.items())
                },
                "skipped_pairs": sorted(self._skipped_pairs),
                "degraded_tiles": sorted(self._degraded_tiles),
            }
            if self.injected is not None:
                out["injected"] = dict(self.injected)
            return out

    def summary(self) -> str:
        """One-line human summary for CLI output."""
        with self._lock:
            return (
                f"{len(self._retries)} retried read(s), "
                f"{len(self._skipped_tiles)} skipped tile(s), "
                f"{len(self._skipped_pairs)} skipped pair(s), "
                f"{len(self._degraded_tiles)} degraded tile(s)"
            )
