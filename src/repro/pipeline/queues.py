"""Bounded monitor queues for inter-stage communication.

The paper: "These queues have monitor implementations to prevent race
conditions."  A monitor queue is a FIFO guarded by one mutex and two
condition variables (not-empty / not-full).  Bounding matters: an unbounded
queue between a fast reader and a slow FFT stage would buffer the whole
grid in memory, which is exactly the failure mode Fig. 5 demonstrates.

This is implemented from scratch (rather than reusing :mod:`queue`) because
the pipeline needs *closeable* queues with poison-free end-of-stream
semantics: a closed queue unblocks every consumer once drained, and
rejects further puts.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any


class QueueClosed(Exception):
    """Raised by :meth:`MonitorQueue.put` / ``get`` on a closed queue."""


class MonitorQueue:
    """Bounded FIFO with monitor (mutex + condition variable) semantics.

    ``maxsize <= 0`` means unbounded.  After :meth:`close`, ``put`` raises
    :class:`QueueClosed` immediately and ``get`` drains remaining items,
    then raises :class:`QueueClosed` for every waiter.
    """

    def __init__(self, maxsize: int = 0, name: str = "") -> None:
        self._items: deque = deque()
        self._maxsize = maxsize
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False
        self.name = name
        # Telemetry for the profiler: high-water mark and total traffic.
        self.peak_depth = 0
        self.total_put = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def put(self, item: Any, timeout: float | None = None) -> None:
        """Append ``item``; blocks while full.  Raises on closed queue."""
        with self._not_full:
            if self._closed:
                raise QueueClosed(self.name)
            while self._maxsize > 0 and len(self._items) >= self._maxsize:
                if not self._not_full.wait(timeout):
                    raise TimeoutError(
                        f"queue {self.name or id(self)} full for {timeout}s"
                    )
                if self._closed:
                    raise QueueClosed(self.name)
            self._items.append(item)
            self.total_put += 1
            self.peak_depth = max(self.peak_depth, len(self._items))
            self._not_empty.notify()

    def get(self, timeout: float | None = None) -> Any:
        """Pop the oldest item; blocks while empty.

        Raises :class:`QueueClosed` once the queue is closed *and* drained.
        """
        with self._not_empty:
            while not self._items:
                if self._closed:
                    raise QueueClosed(self.name)
                if not self._not_empty.wait(timeout):
                    raise TimeoutError(
                        f"queue {self.name or id(self)} empty for {timeout}s"
                    )
            item = self._items.popleft()
            self._not_full.notify()
            return item

    def close(self) -> None:
        """Mark end-of-stream; idempotent.  Wakes all blocked threads."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
