"""Bounded monitor queues for inter-stage communication.

The paper: "These queues have monitor implementations to prevent race
conditions."  A monitor queue is a FIFO guarded by one mutex and two
condition variables (not-empty / not-full).  Bounding matters: an unbounded
queue between a fast reader and a slow FFT stage would buffer the whole
grid in memory, which is exactly the failure mode Fig. 5 demonstrates.

This is implemented from scratch (rather than reusing :mod:`queue`) because
the pipeline needs *closeable* queues with poison-free end-of-stream
semantics: a closed queue unblocks every consumer once drained, and
rejects further puts.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any


class QueueClosed(Exception):
    """Raised by :meth:`MonitorQueue.put` / ``get`` on a closed queue."""


def _remaining(deadline: float | None) -> float | None:
    """Seconds left until ``deadline`` (monotonic); ``None`` = no deadline.

    Condition-variable waits can wake spuriously (or be woken by traffic
    that does not help this waiter); re-waiting with the caller's *full*
    timeout on every wakeup would let the deadline slip without bound, so
    every wait gets only the time still remaining.
    """
    if deadline is None:
        return None
    return deadline - time.monotonic()


class MonitorQueue:
    """Bounded FIFO with monitor (mutex + condition variable) semantics.

    ``maxsize <= 0`` means unbounded.  After :meth:`close`, ``put`` raises
    :class:`QueueClosed` immediately and ``get`` drains remaining items,
    then raises :class:`QueueClosed` for every waiter.
    """

    def __init__(self, maxsize: int = 0, name: str = "") -> None:
        self._items: deque = deque()
        self._maxsize = maxsize
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False
        self.name = name
        # Telemetry for the profiler: high-water mark and total traffic.
        self.peak_depth = 0
        self.total_put = 0
        self.total_get = 0
        #: Cumulative seconds producers/consumers spent blocked on this
        #: queue -- the queue-pressure signal the depth sampler can miss
        #: between polls.
        self.put_wait_seconds = 0.0
        self.get_wait_seconds = 0.0

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def depth(self) -> int:
        """Current item count, read without the lock.

        ``len(deque)`` is GIL-atomic; the watchdog polls this from outside
        the pipeline and must never contend with (or wait behind) blocked
        producers holding the monitor lock.
        """
        return len(self._items)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def put(self, item: Any, timeout: float | None = None) -> None:
        """Append ``item``; blocks while full.  Raises on closed queue.

        ``timeout`` is a *total* budget: the deadline is computed once
        (monotonic clock) and each condition wait gets only the remaining
        time, so wakeup churn cannot extend the caller's deadline.
        """
        with self._not_full:
            if self._closed:
                raise QueueClosed(self.name)
            if self._maxsize > 0 and len(self._items) >= self._maxsize:
                deadline = (
                    None if timeout is None else time.monotonic() + timeout
                )
                blocked_at = time.monotonic()
                try:
                    while self._maxsize > 0 and len(self._items) >= self._maxsize:
                        if not self._not_full.wait(_remaining(deadline)):
                            raise TimeoutError(
                                f"queue {self.name or id(self)} full for {timeout}s"
                            )
                        if self._closed:
                            raise QueueClosed(self.name)
                finally:
                    self.put_wait_seconds += time.monotonic() - blocked_at
            self._items.append(item)
            self.total_put += 1
            self.peak_depth = max(self.peak_depth, len(self._items))
            self._not_empty.notify()

    def get(self, timeout: float | None = None) -> Any:
        """Pop the oldest item; blocks while empty.

        Raises :class:`QueueClosed` once the queue is closed *and* drained.
        Like :meth:`put`, ``timeout`` is a total budget against a
        monotonic deadline, immune to wakeup churn.
        """
        with self._not_empty:
            if not self._items:
                deadline = (
                    None if timeout is None else time.monotonic() + timeout
                )
                blocked_at = time.monotonic()
                try:
                    while not self._items:
                        if self._closed:
                            raise QueueClosed(self.name)
                        if not self._not_empty.wait(_remaining(deadline)):
                            raise TimeoutError(
                                f"queue {self.name or id(self)} empty for {timeout}s"
                            )
                finally:
                    self.get_wait_seconds += time.monotonic() - blocked_at
            item = self._items.popleft()
            self.total_get += 1
            self._not_full.notify()
            return item

    def close(self) -> None:
        """Mark end-of-stream; idempotent.  Wakes all blocked threads."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
