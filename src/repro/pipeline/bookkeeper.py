"""Dependency-resolution bookkeeping (stage 4 of the paper's Fig. 8).

The bookkeeper "manages the state of the computation.  It resolves
dependencies and advances pairs of adjacent tiles that are ready (i.e.,
their FFTs are available) to the next stage."

:class:`PairBookkeeper` is the pure state machine extracted from that
stage so it can be unit-tested without threads: feed it "transform of tile
(r, c) is ready" events, get back the list of adjacent pairs that just
became computable.  It also tracks per-tile reference counts (one per
incident pair) so callers know exactly when a tile's transform buffer can
be recycled -- the GPU memory-pool discipline of Section IV.B.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.grid.neighbors import Pair, pairs_for_tile
from repro.grid.tile_grid import GridPosition, TileGrid


@dataclass
class PairBookkeeper:
    """Tracks which pairs are ready and when tile buffers become free.

    ``pairs`` restricts bookkeeping to a subset of the grid's pairs -- this
    is how the multi-GPU implementation partitions work: each GPU's
    bookkeeper owns only its partition's pairs, and boundary ("ghost")
    tiles get reference counts equal to their incident-pair count *within
    the partition*.  ``None`` means the whole grid.

    Thread-compatibility: the bookkeeper itself is not locked; in the
    pipelined implementations exactly one bookkeeping thread owns it
    (matching the single-BK-thread design in Fig. 8).
    """

    grid: TileGrid
    pairs: frozenset | None = None
    #: Optional :class:`~repro.observe.metrics.MetricsRegistry`; when set,
    #: the bookkeeper publishes its progress (ready transforms, emitted /
    #: completed / cancelled pairs, pending backlog) -- the quantities the
    #: paper's authors watched to tune the Fig. 8 monitor queues.
    metrics: Any = None
    _ready: set[GridPosition] = field(default_factory=set)
    _emitted: set[Pair] = field(default_factory=set)
    _completed: set[Pair] = field(default_factory=set)
    _refcount: dict[GridPosition, int] = field(default_factory=dict)
    _failed: set[GridPosition] = field(default_factory=set)
    _cancelled: set[Pair] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.pairs is not None:
            self.pairs = frozenset(self.pairs)
        for pos in self.grid.positions():
            n = len(self._incident(pos))
            if n > 0 or self.pairs is None:
                self._refcount[pos] = n

    def _incident(self, pos: GridPosition) -> list[Pair]:
        out = pairs_for_tile(self.grid, pos.row, pos.col)
        if self.pairs is not None:
            out = [p for p in out if p in self.pairs]
        return out

    @property
    def tiles(self) -> set[GridPosition]:
        """Tiles this bookkeeper tracks (partition tiles incl. ghosts)."""
        return set(self._refcount)

    def _publish(self) -> None:
        """Refresh progress gauges (counters are bumped at the event site).

        With several bookkeepers on one registry (per-GPU / per-socket
        partitions) the gauges are last-write-wins per partition; the
        counters aggregate correctly across all of them.
        """
        m = self.metrics
        if m is None:
            return
        m.gauge("bookkeeper.pending_pairs").set(self.pending_pairs())
        m.gauge("bookkeeper.ready_transforms").set(len(self._ready))

    # -- events -----------------------------------------------------------

    def transform_ready(self, pos: GridPosition) -> list[Pair]:
        """Record a tile's transform arrival; return newly-computable pairs."""
        if pos not in self.grid:
            raise ValueError(f"{pos} outside grid")
        if pos in self._ready:
            raise ValueError(f"transform for {pos} reported ready twice")
        self._ready.add(pos)
        out = []
        for pair in self._incident(pos):
            if (
                pair not in self._emitted
                and pair.first in self._ready
                and pair.second in self._ready
            ):
                self._emitted.add(pair)
                out.append(pair)
        if self.metrics is not None:
            self.metrics.counter("bookkeeper.transforms_ready").inc()
            if out:
                self.metrics.counter("bookkeeper.pairs_emitted").inc(len(out))
            self._publish()
        return out

    def pair_completed(self, pair: Pair) -> list[GridPosition]:
        """Record a finished pair; return tiles whose buffers are now free.

        Decrements both members' reference counts; a tile is releasable when
        its count reaches zero (every incident pair computed).
        """
        if pair in self._completed:
            raise ValueError(f"pair {pair} completed twice")
        if pair not in self._emitted:
            raise ValueError(f"pair {pair} completed but never emitted")
        self._completed.add(pair)
        freed = []
        for pos in (pair.first, pair.second):
            self._refcount[pos] -= 1
            if self._refcount[pos] == 0:
                freed.append(pos)
            elif self._refcount[pos] < 0:  # pragma: no cover - guarded above
                raise AssertionError(f"negative refcount for {pos}")
        if self.metrics is not None:
            self.metrics.counter("bookkeeper.pairs_completed").inc()
            if freed:
                self.metrics.counter("bookkeeper.tiles_freed").inc(len(freed))
            self._publish()
        return freed

    def tile_failed(self, pos: GridPosition) -> list[GridPosition]:
        """Cancel every not-yet-emitted pair incident to a failed tile.

        Called when a tile could not be read (or transformed) and its
        retries are exhausted under a skip policy: the tile will never
        report ``transform_ready``, so every pair waiting on it is
        cancelled and the *other* member's reference count is decremented
        as if the pair had completed.  Returns the tiles whose buffers are
        now recyclable (ready tiles whose count reached zero), exactly
        like :meth:`pair_completed`.

        Emitted pairs are untouched -- emission requires both transforms
        resident, which a failed tile never achieves.
        """
        if pos not in self.grid:
            raise ValueError(f"{pos} outside grid")
        if pos in self._ready:
            raise ValueError(f"tile {pos} already ready; cannot fail it")
        if pos in self._failed:
            return []
        self._failed.add(pos)
        cancelled_before = len(self._cancelled)
        freed = []
        for pair in self._incident(pos):
            if pair in self._cancelled:
                continue
            self._cancelled.add(pair)
            for member in (pair.first, pair.second):
                self._refcount[member] -= 1
                if (
                    self._refcount[member] == 0
                    and member in self._ready
                ):
                    freed.append(member)
        if self.metrics is not None:
            self.metrics.counter("bookkeeper.tiles_failed").inc()
            n_cancelled = len(self._cancelled) - cancelled_before
            if n_cancelled:
                self.metrics.counter("bookkeeper.pairs_cancelled").inc(n_cancelled)
            self._publish()
        return freed

    def pair_failed(self, pair: Pair) -> list[GridPosition]:
        """Cancel an *emitted* pair whose computation will never finish.

        The watchdog path: a pair was emitted (both transforms resident),
        its compute-stage item hung, and the cancellation dropped it under
        a skip policy.  Both members' reference counts are decremented as
        if the pair had completed -- otherwise their buffers (and the
        pipeline's completion count) would leak.  Returns newly-releasable
        tiles, like :meth:`pair_completed`.  Idempotent per pair.
        """
        if pair not in self._emitted:
            raise ValueError(f"pair {pair} failed but never emitted")
        if pair in self._completed:
            raise ValueError(f"pair {pair} already completed; cannot fail it")
        if pair in self._cancelled:
            return []
        self._cancelled.add(pair)
        freed = []
        for member in (pair.first, pair.second):
            self._refcount[member] -= 1
            if self._refcount[member] == 0 and member in self._ready:
                freed.append(member)
        if self.metrics is not None:
            self.metrics.counter("bookkeeper.pairs_cancelled").inc()
            self._publish()
        return freed

    def releasable(self, pos: GridPosition) -> bool:
        """A ready tile with no remaining incident pairs (all cancelled).

        Checked by the bookkeeping stage right after ``transform_ready``:
        a tile whose neighbours all failed arrives holding a pool slot it
        will never use for a pair.
        """
        return pos in self._ready and self._refcount.get(pos, 0) == 0

    # -- progress ------------------------------------------------------------

    @property
    def total_pairs(self) -> int:
        if self.pairs is not None:
            return len(self.pairs)
        n, m = self.grid.rows, self.grid.cols
        return 2 * n * m - n - m

    @property
    def cancelled_pairs(self) -> int:
        return len(self._cancelled)

    @property
    def failed_tiles(self) -> set[GridPosition]:
        return set(self._failed)

    def all_pairs_completed(self) -> bool:
        return len(self._completed) == self.total_pairs - len(self._cancelled)

    def pending_pairs(self) -> int:
        return self.total_pairs - len(self._cancelled) - len(self._completed)
