"""General-purpose producer/consumer pipeline framework.

The paper's Section VI.A promises "a general purpose API for the pipeline,
so it can be applied to other problems" -- the idea that later became the
NIST HTGS framework.  This package is that API: it knows nothing about
image stitching.

A :class:`~repro.pipeline.graph.Pipeline` is a set of
:class:`~repro.pipeline.stage.Stage` objects connected by bounded
monitor queues (:class:`~repro.pipeline.queues.MonitorQueue`).  Each stage
runs one or more worker threads that consume items from the stage's input
queue, invoke a user handler, and emit results downstream.  Lifecycle
(start, poison-pill shutdown, exception propagation) is handled by the
framework, matching the structure of the paper's Fig. 8.
"""

from repro.pipeline.queues import MonitorQueue, QueueClosed
from repro.pipeline.stage import Stage, StageContext, END_OF_STREAM
from repro.pipeline.graph import Pipeline, PipelineError, PipelineStallError
from repro.pipeline.bookkeeper import PairBookkeeper

__all__ = [
    "MonitorQueue",
    "QueueClosed",
    "Stage",
    "StageContext",
    "END_OF_STREAM",
    "Pipeline",
    "PipelineError",
    "PipelineStallError",
    "PairBookkeeper",
]
