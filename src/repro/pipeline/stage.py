"""Pipeline stages: N worker threads around a user handler.

A stage's handler is a callable ``handler(item, ctx) -> result | None``;
whatever it returns (when not ``None``) is forwarded to the stage's output
queue.  Handlers may also emit explicitly (``ctx.emit``) to produce zero or
many outputs per input -- the bookkeeping stage of the paper's Fig. 8 does
exactly this, emitting a pair only when both members' FFTs are ready.

End-of-stream is signalled by closing the input queue, *not* by poison
values: with multiple workers per stage a single poison pill would be
consumed by one worker and lost.  The framework closes each stage's output
once all its workers exit.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.pipeline.queues import MonitorQueue, QueueClosed

#: Sentinel a *source* handler returns to end its stream.
END_OF_STREAM = object()


@dataclass
class StageContext:
    """Handed to every handler invocation.

    ``emit`` pushes downstream; ``worker_index`` identifies the calling
    worker (0-based); ``stage`` is the owning stage (e.g. for its name).
    """

    stage: "Stage"
    worker_index: int

    def emit(self, item: Any) -> None:
        if self.stage.output is None:
            raise RuntimeError(f"stage {self.stage.name!r} has no output queue")
        self.stage.output.put(item)


class Stage:
    """One pipeline stage with ``workers`` threads.

    Stages come in two flavours:

    - *source* stages (``input is None``): the handler is called with
      ``None`` repeatedly until it returns :data:`END_OF_STREAM`;
    - *transform/sink* stages: the handler is called once per input item
      until the input queue closes and drains.
    """

    def __init__(
        self,
        name: str,
        handler: Callable[[Any, StageContext], Any],
        workers: int = 1,
        input: MonitorQueue | None = None,
        output: MonitorQueue | None = None,
        on_error: Callable[[], None] | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"stage {name!r} needs at least one worker")
        self.name = name
        self.handler = handler
        self.workers = workers
        self.input = input
        self.output = output
        self.on_error = on_error
        self.threads: list[threading.Thread] = []
        self.errors: list[BaseException] = []
        self.items_processed = 0
        #: Wall-clock seconds spent inside the handler, summed over
        #: workers -- the numerator of the stage-utilization telemetry
        #: (how the pipeline's balance is diagnosed, cf. the paper's
        #: profiler-driven analysis of its stage occupancy).
        self.busy_seconds = 0.0
        self._count_lock = threading.Lock()
        self._active = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self.threads:
            raise RuntimeError(f"stage {self.name!r} already started")
        self._active = self.workers
        for i in range(self.workers):
            t = threading.Thread(
                target=self._run, args=(i,), name=f"stage-{self.name}-{i}", daemon=True
            )
            self.threads.append(t)
            t.start()

    def join(self) -> None:
        for t in self.threads:
            t.join()

    # -- worker loop ---------------------------------------------------------

    def _worker_done(self) -> None:
        with self._count_lock:
            self._active -= 1
            last = self._active == 0
        # The last worker out closes the downstream queue so the next stage
        # sees end-of-stream exactly once all of this stage's work is done.
        if last and self.output is not None:
            self.output.close()

    def _run(self, worker_index: int) -> None:
        ctx = StageContext(stage=self, worker_index=worker_index)
        try:
            if self.input is None:
                self._run_source(ctx)
            else:
                self._run_consumer(ctx)
        except QueueClosed:
            # Downstream closed under us (pipeline aborting): exit quietly.
            pass
        except BaseException as exc:  # propagate to Pipeline.result()
            self.errors.append(exc)
            # Poison downstream so the rest of the pipeline unblocks.
            if self.output is not None:
                self.output.close()
            if self.input is not None:
                self.input.close()
            # Pipeline-wide abort (closes every registered queue) so stages
            # not adjacent to this one cannot deadlock on a failure.
            if self.on_error is not None:
                self.on_error()
        finally:
            self._worker_done()

    def _handle(self, item: Any, ctx: StageContext) -> Any:
        import time

        t0 = time.perf_counter()
        result = self.handler(item, ctx)
        dt = time.perf_counter() - t0
        with self._count_lock:
            self.items_processed += 1
            self.busy_seconds += dt
        return result

    def _run_source(self, ctx: StageContext) -> None:
        while True:
            result = self._handle(None, ctx)
            if result is END_OF_STREAM:
                return
            if result is not None:
                ctx.emit(result)

    def _run_consumer(self, ctx: StageContext) -> None:
        assert self.input is not None
        while True:
            try:
                item = self.input.get()
            except QueueClosed:
                return
            result = self._handle(item, ctx)
            if result is not None and result is not END_OF_STREAM:
                ctx.emit(result)
