"""Pipeline stages: N worker threads around a user handler.

A stage's handler is a callable ``handler(item, ctx) -> result | None``;
whatever it returns (when not ``None``) is forwarded to the stage's output
queue.  Handlers may also emit explicitly (``ctx.emit``) to produce zero or
many outputs per input -- the bookkeeping stage of the paper's Fig. 8 does
exactly this, emitting a pair only when both members' FFTs are ready.

End-of-stream is signalled by closing the input queue, *not* by poison
values: with multiple workers per stage a single poison pill would be
consumed by one worker and lost.  The framework closes each stage's output
once all its workers exit.

Failure handling: by default any handler exception aborts the whole
pipeline (the pre-fault-tolerance behavior).  A stage constructed with an
:class:`ErrorPolicy` instead retries the failing item with deterministic
exponential backoff and, when retries are exhausted, either aborts, or
drops the item with a structured :class:`DroppedItem` record so the rest
of the graph keeps flowing -- the paper's redundant displacement graph
tolerates missing edges, so a dropped pair degrades the mosaic instead of
killing the run.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.observe.tracer import NULL_TRACER
from repro.pipeline.queues import MonitorQueue, QueueClosed
from repro.recovery.cancel import CancelToken, ItemCancelled, install_token

#: Sentinel a *source* handler returns to end its stream.
END_OF_STREAM = object()


def item_key(item: Any) -> str | None:
    """Short stable identity of a work item for span labelling.

    Work items in this codebase are dataclasses carrying a ``pos`` (tile)
    or ``pair`` attribute; falling back to ``repr`` would stringify tile
    pixel arrays, so anything unrecognized is labelled by type only.
    """
    if item is None:
        return None
    for attr in ("pos", "pair", "key"):
        v = getattr(item, attr, None)
        if v is not None:
            return str(v)
    if isinstance(item, (str, int, float, tuple)):
        return str(item)[:64]
    return type(item).__name__


class StageItemTimeout(Exception):
    """An item's handler exceeded the policy's per-item timeout.

    Python threads cannot be interrupted, so the timeout is *cooperative*:
    it is detected when the handler returns, the (late) result is
    discarded, and the overrun counts as one failed attempt.
    """


@dataclass(frozen=True)
class ErrorPolicy:
    """Per-stage retry and error-disposition policy.

    ``max_retries``
        Additional attempts after the first failure (0 = fail immediately).
    ``backoff`` / ``backoff_factor`` / ``jitter``
        Exponential backoff schedule between attempts:
        ``backoff * backoff_factor**attempt``, inflated by up to
        ``jitter`` (a fraction) using a *deterministic* hash of
        ``(seed, attempt, key)`` so runs are reproducible.
    ``item_timeout``
        Cooperative per-item wall-clock budget (seconds); an overrunning
        handler invocation counts as a failed attempt (see
        :class:`StageItemTimeout`).
    ``on_exhausted``
        ``"abort"`` re-raises (poisoning the pipeline, the legacy
        behavior); ``"skip"`` and ``"degrade"`` drop the item with a
        :class:`DroppedItem` record.  The two non-abort values are
        identical at stage level; ``"degrade"`` documents that a
        downstream consumer will substitute a fallback (e.g. nominal
        stage coordinates) rather than simply omit the item.
    ``retryable``
        Exception types eligible for retry; anything else fails the item
        on the first occurrence (still honoring ``on_exhausted``).
    """

    max_retries: int = 0
    backoff: float = 0.0
    backoff_factor: float = 2.0
    jitter: float = 0.0
    item_timeout: float | None = None
    on_exhausted: str = "abort"
    retryable: tuple = (Exception,)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.on_exhausted not in ("abort", "skip", "degrade"):
            raise ValueError(
                f"on_exhausted must be abort/skip/degrade, got {self.on_exhausted!r}"
            )

    def delay(self, attempt: int, key: Any = 0) -> float:
        """Backoff before retry number ``attempt`` (0-based), deterministic."""
        base = self.backoff * self.backoff_factor**attempt
        if base <= 0.0:
            return 0.0
        if self.jitter:
            digest = zlib.crc32(repr((self.seed, attempt, key)).encode())
            base *= 1.0 + self.jitter * ((digest & 0xFFFF) / 0xFFFF)
        return base


@dataclass
class DroppedItem:
    """Structured record of an item abandoned under an :class:`ErrorPolicy`."""

    stage: str
    item: str  # repr of the offending item (items may be unpicklable/huge)
    error: BaseException
    attempts: int


def run_with_retries(
    fn: Callable[[], Any],
    policy: ErrorPolicy,
    key: Any = 0,
    on_retry: Callable[[int, BaseException], None] | None = None,
    sleep: Callable[[float], None] = time.sleep,
) -> tuple[Any, int]:
    """Invoke ``fn`` under ``policy``; return ``(value, attempts_used)``.

    Raises the last exception once retries are exhausted (disposition --
    abort vs skip -- is the *caller's* job, since only the caller knows
    how to record the drop).  :class:`~repro.pipeline.queues.QueueClosed`
    is control flow, never retried, and always re-raised immediately.
    """
    attempt = 0
    while True:
        t0 = time.perf_counter()
        try:
            value = fn()
        except (QueueClosed, ItemCancelled):
            # QueueClosed is control flow; ItemCancelled means the
            # watchdog flagged this item -- the token stays cancelled, so
            # retrying could only burn backoff time before failing again.
            raise
        except policy.retryable as exc:
            if attempt >= policy.max_retries:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            delay = policy.delay(attempt, key)
            if delay > 0:
                sleep(delay)
            attempt += 1
            continue
        dt = time.perf_counter() - t0
        if policy.item_timeout is not None and dt > policy.item_timeout:
            exc = StageItemTimeout(
                f"handler took {dt:.3f}s (> {policy.item_timeout}s budget)"
            )
            if attempt >= policy.max_retries:
                raise exc
            if on_retry is not None:
                on_retry(attempt, exc)
            attempt += 1
            continue
        return value, attempt


@dataclass
class StageContext:
    """Handed to every handler invocation.

    ``emit`` pushes downstream; ``worker_index`` identifies the calling
    worker (0-based); ``stage`` is the owning stage (e.g. for its name).
    """

    stage: "Stage"
    worker_index: int

    def emit(self, item: Any) -> None:
        if self.stage.output is None:
            raise RuntimeError(f"stage {self.stage.name!r} has no output queue")
        self.stage.output.put(item)


class Stage:
    """One pipeline stage with ``workers`` threads.

    Stages come in two flavours:

    - *source* stages (``input is None``): the handler is called with
      ``None`` repeatedly until it returns :data:`END_OF_STREAM`;
    - *transform/sink* stages: the handler is called once per input item
      until the input queue closes and drains.

    With a ``policy``, failing items are retried per the policy and --
    under ``skip``/``degrade`` -- recorded in :attr:`dropped` instead of
    aborting the graph.  Retrying re-invokes the handler, so handlers
    that ``ctx.emit`` before failing have at-least-once emit semantics;
    the built-in implementations only emit after their side effects
    complete.
    """

    def __init__(
        self,
        name: str,
        handler: Callable[[Any, StageContext], Any],
        workers: int = 1,
        input: MonitorQueue | None = None,
        output: MonitorQueue | None = None,
        on_error: Callable[[], None] | None = None,
        policy: ErrorPolicy | None = None,
        tracer=None,
        metrics=None,
        track_base: str | None = None,
        supervised: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError(f"stage {name!r} needs at least one worker")
        self.name = name
        self.handler = handler
        self.workers = workers
        self.input = input
        self.output = output
        self.on_error = on_error
        self.policy = policy
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        #: Span-track stem (one track per worker: ``"<track_base>-<i>"``);
        #: pipelines prefix it with their own name so multi-pipeline
        #: implementations (per-GPU, per-socket) get distinct rows.
        self.track_base = track_base or name
        self.threads: list[threading.Thread] = []
        self.errors: list[BaseException] = []
        self.dropped: list[DroppedItem] = []
        self.items_processed = 0
        self.items_retried = 0
        #: Wall-clock seconds spent inside the handler, summed over
        #: workers -- the numerator of the stage-utilization telemetry
        #: (how the pipeline's balance is diagnosed, cf. the paper's
        #: profiler-driven analysis of its stage occupancy).
        self.busy_seconds = 0.0
        #: Wall-clock seconds workers spent blocked on the input queue,
        #: summed over workers (the denominator's idle share: a stage with
        #: high queue-wait and low busy time is starved, not slow).
        self.queue_wait_seconds = 0.0
        self._count_lock = threading.Lock()
        self._active = 0
        #: When True (a watchdog supervises the pipeline), each handler
        #: invocation runs under a thread-local
        #: :class:`~repro.recovery.cancel.CancelToken` and is listed in
        #: the per-worker in-flight table the watchdog polls.  Off by
        #: default so unsupervised pipelines pay nothing.
        self.supervised = supervised
        self._inflight: dict[int, tuple] = {}

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self.threads:
            raise RuntimeError(f"stage {self.name!r} already started")
        self._active = self.workers
        for i in range(self.workers):
            t = threading.Thread(
                target=self._run, args=(i,), name=f"stage-{self.name}-{i}", daemon=True
            )
            self.threads.append(t)
            t.start()

    def join(self) -> None:
        for t in self.threads:
            t.join()

    # -- worker loop ---------------------------------------------------------

    def _worker_done(self) -> None:
        with self._count_lock:
            self._active -= 1
            last = self._active == 0
        # The last worker out closes the downstream queue so the next stage
        # sees end-of-stream exactly once all of this stage's work is done.
        if last and self.output is not None:
            self.output.close()

    def _run(self, worker_index: int) -> None:
        ctx = StageContext(stage=self, worker_index=worker_index)
        try:
            if self.input is None:
                self._run_source(ctx)
            else:
                self._run_consumer(ctx)
        except QueueClosed:
            # Downstream closed under us (pipeline aborting): exit quietly.
            pass
        except BaseException as exc:  # propagate to Pipeline.result()
            self.errors.append(exc)
            # Poison downstream so the rest of the pipeline unblocks.
            if self.output is not None:
                self.output.close()
            if self.input is not None:
                self.input.close()
            # Pipeline-wide abort (closes every registered queue) so stages
            # not adjacent to this one cannot deadlock on a failure.
            if self.on_error is not None:
                self.on_error()
        finally:
            self._worker_done()

    def inflight(self) -> list[tuple]:
        """Snapshot of ``(worker_index, item_key, started_monotonic, token)``
        for every handler invocation currently executing.

        Read lock-free by the watchdog: individual dict operations are
        GIL-atomic, and a slightly stale snapshot only shifts detection by
        one poll interval.
        """
        return list(self._inflight.values())

    def _handle(self, item: Any, ctx: StageContext) -> Any:
        tracer = self.tracer
        span_t0 = tracer.now() if tracer.enabled else 0.0
        token = prev_token = None
        if self.supervised:
            token = CancelToken()
            prev_token = install_token(token)
            self._inflight[ctx.worker_index] = (
                ctx.worker_index, item_key(item), time.monotonic(), token
            )
        t0 = time.perf_counter()
        try:
            if self.policy is None:
                result = self.handler(item, ctx)
            else:
                result = self._handle_with_policy(item, ctx)
        finally:
            dt = time.perf_counter() - t0
            if self.supervised:
                self._inflight.pop(ctx.worker_index, None)
                install_token(prev_token)
            with self._count_lock:
                self.items_processed += 1
                self.busy_seconds += dt
            if tracer.enabled:
                tracer.record_span(
                    self.name,
                    f"{self.track_base}-{ctx.worker_index}",
                    span_t0,
                    span_t0 + dt,
                    key=item_key(item),
                )
            if self.metrics is not None:
                self.metrics.counter(f"stage.{self.name}.items").inc()
                self.metrics.histogram(f"stage.{self.name}.seconds").observe(dt)
        return result

    def _handle_with_policy(self, item: Any, ctx: StageContext) -> Any:
        def record_retry(_attempt: int, _exc: BaseException) -> None:
            with self._count_lock:
                self.items_retried += 1
            if self.metrics is not None:
                self.metrics.counter(f"stage.{self.name}.retries").inc()

        attempts = 0

        def attempt_counter(attempt: int, exc: BaseException) -> None:
            nonlocal attempts
            attempts = attempt + 1
            record_retry(attempt, exc)

        try:
            result, _ = run_with_retries(
                lambda: self.handler(item, ctx),
                self.policy,
                key=(self.name, repr(item)[:64]),
                on_retry=attempt_counter,
            )
            return result
        except QueueClosed:
            raise
        except Exception as exc:
            if self.policy.on_exhausted == "abort":
                raise
            with self._count_lock:
                self.dropped.append(
                    DroppedItem(self.name, repr(item), exc, attempts + 1)
                )
            if self.metrics is not None:
                self.metrics.counter(f"stage.{self.name}.dropped").inc()
            return None

    def _run_source(self, ctx: StageContext) -> None:
        while True:
            result = self._handle(None, ctx)
            if result is END_OF_STREAM:
                return
            if result is not None:
                ctx.emit(result)

    def _run_consumer(self, ctx: StageContext) -> None:
        assert self.input is not None
        tracer = self.tracer
        track = f"{self.track_base}-{ctx.worker_index}"
        while True:
            w0 = time.perf_counter()
            span_t0 = tracer.now() if tracer.enabled else 0.0
            try:
                item = self.input.get()
            except QueueClosed:
                return
            finally:
                waited = time.perf_counter() - w0
                with self._count_lock:
                    self.queue_wait_seconds += waited
                # Only blocking waits become spans: an always-ready queue
                # would otherwise bury the timeline in zero-width boxes.
                if tracer.enabled and waited > 1e-4:
                    tracer.record_span(
                        f"{self.name}:wait", track, span_t0, span_t0 + waited,
                        args={"queue": self.input.name},
                    )
            result = self._handle(item, ctx)
            if result is not None and result is not END_OF_STREAM:
                ctx.emit(result)
