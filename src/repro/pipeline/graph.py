"""Pipeline wiring and lifecycle.

A :class:`Pipeline` owns stages and the queues between them, starts all
worker threads, waits for completion, and surfaces every worker exception
to the caller (wrapped in a single :class:`PipelineError` naming the
failing stages) instead of deadlocking -- failure injection tests depend
on this.

Stages need not form a single chain: the paper's Fig. 8 graph has a feedback
edge (the displacement stage notifies the bookkeeper about freed transform
buffers).  Arbitrary queue topologies are supported because stages only know
their own input/output queues; cycles are the *user's* responsibility to
terminate (the bookkeeper closes its feedback consumer by counting).
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.observe.sampler import QueueDepthSampler
from repro.observe.tracer import NULL_TRACER
from repro.pipeline.queues import MonitorQueue
from repro.pipeline.stage import DroppedItem, ErrorPolicy, Stage
from repro.recovery.watchdog import StallReport, Watchdog, WatchdogConfig


class PipelineError(RuntimeError):
    """One or more stage workers raised.

    ``failures`` lists every collected ``(stage_name, exception)`` pair in
    stage order -- a run can fail in several stages at once (e.g. a reader
    hitting a corrupt tile while a compute worker times out on the pool),
    and losing all but the first hides the real sequence of events.  The
    first exception is also chained as ``__cause__`` for compatibility
    with ``raise ... from`` consumers.
    """

    def __init__(
        self,
        message: str,
        failures: list[tuple[str, BaseException]] | None = None,
    ) -> None:
        super().__init__(message)
        self.failures: list[tuple[str, BaseException]] = list(failures or [])


class PipelineStallError(PipelineError):
    """The watchdog escalated: a hung item or a whole-pipeline stall.

    Raised by ``join()``/``result()`` in place of an eternal block.
    ``report`` is the watchdog's structured
    :class:`~repro.recovery.watchdog.StallReport` (what hung, where, for
    how long, and the progress counters at escalation time);
    ``abandoned_threads`` names daemon workers that were still alive when
    the supervised join gave up waiting on them.
    """

    def __init__(
        self,
        message: str,
        report: StallReport,
        failures: list[tuple[str, BaseException]] | None = None,
        abandoned_threads: list[str] | None = None,
    ) -> None:
        super().__init__(message, failures=failures)
        self.report = report
        self.abandoned_threads = list(abandoned_threads or [])


def aggregate_failures(
    name: str, failures: list[tuple[str, BaseException]]
) -> PipelineError:
    """Build one :class:`PipelineError` chaining all worker exceptions."""
    stages = []
    for stage_name, _ in failures:
        if stage_name not in stages:
            stages.append(stage_name)
    detail = "; ".join(
        f"{stage_name}: {type(exc).__name__}: {exc}" for stage_name, exc in failures
    )
    err = PipelineError(
        f"stage {', '.join(repr(s) for s in stages)} of {name!r} failed "
        f"({len(failures)} worker error{'s' if len(failures) != 1 else ''}: "
        f"{detail})",
        failures=failures,
    )
    if failures:
        err.__cause__ = failures[0][1]
    return err


class Pipeline:
    """A set of stages plus the queues connecting them.

    With a ``tracer`` (and optionally a ``metrics`` registry) every stage
    records per-item spans with queue-wait attribution, and a background
    :class:`~repro.observe.sampler.QueueDepthSampler` polls the depth of
    every queue in the graph for the trace's counter tracks -- the live
    equivalent of the paper's nvvp timelines plus its monitor-queue
    occupancy readings.
    """

    def __init__(
        self,
        name: str = "pipeline",
        tracer=None,
        metrics=None,
        queue_sample_interval: float = 0.005,
        watchdog: WatchdogConfig | None = None,
    ) -> None:
        self.name = name
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.queue_sample_interval = queue_sample_interval
        #: When set, a :class:`~repro.recovery.watchdog.Watchdog` thread
        #: supervises the run: stages are built ``supervised`` (per-item
        #: cancel tokens + in-flight tables) and ``join()`` polls instead
        #: of blocking so an escalation raises :class:`PipelineStallError`
        #: rather than deadlocking.
        self.watchdog_config = watchdog
        self.stages: list[Stage] = []
        self.queues: list[MonitorQueue] = []
        self._sampler: QueueDepthSampler | None = None
        self._watchdog: Watchdog | None = None
        self._abandoned_threads: list[str] = []

    # -- construction --------------------------------------------------------

    def queue(self, maxsize: int = 0, name: str = "") -> MonitorQueue:
        q = MonitorQueue(maxsize=maxsize, name=name or f"q{len(self.queues)}")
        self.queues.append(q)
        return q

    def stage(
        self,
        name: str,
        handler: Callable,
        workers: int = 1,
        input: MonitorQueue | None = None,
        output: MonitorQueue | None = None,
        policy: ErrorPolicy | None = None,
    ) -> Stage:
        s = Stage(
            name,
            handler,
            workers=workers,
            input=input,
            output=output,
            on_error=self.abort,
            policy=policy,
            tracer=self.tracer,
            metrics=self.metrics,
            track_base=f"{self.name}/{name}",
            supervised=self.watchdog_config is not None,
        )
        self.stages.append(s)
        return s

    def abort(self) -> None:
        """Close every queue so all stages unblock (used on worker failure)."""
        for q in self.queues:
            q.close()

    def add_chain(
        self,
        specs: list[tuple[str, Callable, int]],
        queue_size: int = 0,
        policy: ErrorPolicy | None = None,
    ) -> list[Stage]:
        """Convenience: wire ``specs`` (name, handler, workers) into a chain.

        The first stage is a source, the last a sink; a bounded queue of
        ``queue_size`` sits between each consecutive pair.  ``policy``
        applies to every stage in the chain.
        """
        stages: list[Stage] = []
        prev_q: MonitorQueue | None = None
        for i, (name, handler, workers) in enumerate(specs):
            out_q = None
            if i + 1 < len(specs):
                out_q = self.queue(maxsize=queue_size, name=f"{name}-out")
            stages.append(
                self.stage(
                    name, handler, workers=workers, input=prev_q, output=out_q,
                    policy=policy,
                )
            )
            prev_q = out_q
        return stages

    # -- execution -------------------------------------------------------------

    def start(self) -> None:
        """Start queue-depth sampling (when observed) and every stage."""
        if not self.stages:
            raise ValueError("pipeline has no stages")
        if self._sampler is None and (
            self.tracer.enabled or self.metrics is not None
        ) and self.queues:
            self._sampler = QueueDepthSampler(
                self.queues,
                tracer=self.tracer,
                metrics=self.metrics,
                interval=self.queue_sample_interval,
                prefix=f"queue:{self.name}",
            ).start()
        if self._watchdog is None and self.watchdog_config is not None:
            self._watchdog = Watchdog(
                self, self.watchdog_config, metrics=self.metrics
            ).start()
        for s in self.stages:
            s.start()

    def run(self) -> None:
        """Start every stage, join every stage, raise on any worker error."""
        self.start()
        self.join()

    def join(self) -> None:
        """Wait for all workers; raise one aggregated :class:`PipelineError`.

        Supervised pipelines (``watchdog=``) poll-join so a watchdog
        escalation can interrupt the wait: blocked workers are unblocked
        by the abort's queue closures, any worker still wedged in a
        non-cooperative handler after a short grace is *abandoned* (the
        threads are daemons), and :class:`PipelineStallError` carries the
        :class:`StallReport` instead of ``join()`` hanging forever.
        """
        try:
            if self._watchdog is None:
                for s in self.stages:
                    s.join()
            else:
                self._join_supervised()
        finally:
            if self._sampler is not None:
                self._sampler.stop()
            if self._watchdog is not None:
                self._watchdog.stop()
        failures = [(s.name, exc) for s in self.stages for exc in s.errors]
        if self._watchdog is not None and self._watchdog.escalated:
            report = self._watchdog.report()
            raise PipelineStallError(
                f"pipeline {self.name!r} stalled ({report.kind}): "
                f"{report.detail}",
                report=report,
                failures=failures,
                abandoned_threads=self._abandoned_threads,
            )
        if failures:
            raise aggregate_failures(self.name, failures)

    def _join_supervised(self, poll: float = 0.05, grace: float = 5.0) -> None:
        threads = [t for s in self.stages for t in s.threads]
        abandon_at: float | None = None
        while True:
            alive = [t for t in threads if t.is_alive()]
            if not alive:
                return
            if self._watchdog is not None and self._watchdog.escalated:
                now = time.monotonic()
                if abandon_at is None:
                    abandon_at = now + grace
                elif now >= abandon_at:
                    self._abandoned_threads = [t.name for t in alive]
                    return
            alive[0].join(timeout=poll)

    def watchdog_report(self) -> StallReport | None:
        """The watchdog's report (escalated or cooperative), if any."""
        return None if self._watchdog is None else self._watchdog.report()

    def result(self) -> dict[str, Any]:
        """Join and return :meth:`stats`; raises the aggregated error.

        This is the one-stop completion check: every worker exception
        collected during the run -- not just the first -- is surfaced in a
        single :class:`PipelineError` whose ``failures`` attribute names
        the stage of each.
        """
        self.join()
        return self.stats()

    # -- telemetry ---------------------------------------------------------------

    def dropped(self) -> list[DroppedItem]:
        """All items dropped under stage error policies, in stage order."""
        return [d for s in self.stages for d in s.dropped]

    def stats(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "stages": {
                s.name: {
                    "workers": s.workers,
                    "items": s.items_processed,
                    "retried": s.items_retried,
                    "dropped": len(s.dropped),
                    "busy_seconds": s.busy_seconds,
                    "queue_wait_seconds": s.queue_wait_seconds,
                }
                for s in self.stages
            },
            "queues": {
                q.name: {
                    "peak_depth": q.peak_depth,
                    "total_put": q.total_put,
                    "total_get": q.total_get,
                    "put_wait_seconds": q.put_wait_seconds,
                    "get_wait_seconds": q.get_wait_seconds,
                }
                for q in self.queues
            },
        }
        report = self.watchdog_report()
        if report is not None:
            out["watchdog"] = report.to_dict()
        return out

    def utilization(self, wall_seconds: float) -> dict[str, float]:
        """Per-stage busy fraction over a run's wall time.

        The stage with utilization near 1.0 is the pipeline's bottleneck
        (the paper identifies its GPU-compute stage this way in Fig. 10's
        discussion); stages near 0 are over-provisioned.
        """
        if wall_seconds <= 0:
            raise ValueError("wall time must be positive")
        return {
            s.name: s.busy_seconds / (s.workers * wall_seconds)
            for s in self.stages
        }
