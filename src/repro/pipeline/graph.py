"""Pipeline wiring and lifecycle.

A :class:`Pipeline` owns stages and the queues between them, starts all
worker threads, waits for completion, and surfaces the first worker
exception to the caller (wrapped in :class:`PipelineError`) instead of
deadlocking -- failure injection tests depend on this.

Stages need not form a single chain: the paper's Fig. 8 graph has a feedback
edge (the displacement stage notifies the bookkeeper about freed transform
buffers).  Arbitrary queue topologies are supported because stages only know
their own input/output queues; cycles are the *user's* responsibility to
terminate (the bookkeeper closes its feedback consumer by counting).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.pipeline.queues import MonitorQueue
from repro.pipeline.stage import Stage


class PipelineError(RuntimeError):
    """A stage worker raised; the original exception is ``__cause__``."""


class Pipeline:
    """A set of stages plus the queues connecting them."""

    def __init__(self, name: str = "pipeline") -> None:
        self.name = name
        self.stages: list[Stage] = []
        self.queues: list[MonitorQueue] = []

    # -- construction --------------------------------------------------------

    def queue(self, maxsize: int = 0, name: str = "") -> MonitorQueue:
        q = MonitorQueue(maxsize=maxsize, name=name or f"q{len(self.queues)}")
        self.queues.append(q)
        return q

    def stage(
        self,
        name: str,
        handler: Callable,
        workers: int = 1,
        input: MonitorQueue | None = None,
        output: MonitorQueue | None = None,
    ) -> Stage:
        s = Stage(
            name,
            handler,
            workers=workers,
            input=input,
            output=output,
            on_error=self.abort,
        )
        self.stages.append(s)
        return s

    def abort(self) -> None:
        """Close every queue so all stages unblock (used on worker failure)."""
        for q in self.queues:
            q.close()

    def add_chain(
        self,
        specs: list[tuple[str, Callable, int]],
        queue_size: int = 0,
    ) -> list[Stage]:
        """Convenience: wire ``specs`` (name, handler, workers) into a chain.

        The first stage is a source, the last a sink; a bounded queue of
        ``queue_size`` sits between each consecutive pair.
        """
        stages: list[Stage] = []
        prev_q: MonitorQueue | None = None
        for i, (name, handler, workers) in enumerate(specs):
            out_q = None
            if i + 1 < len(specs):
                out_q = self.queue(maxsize=queue_size, name=f"{name}-out")
            stages.append(
                self.stage(name, handler, workers=workers, input=prev_q, output=out_q)
            )
            prev_q = out_q
        return stages

    # -- execution -------------------------------------------------------------

    def run(self) -> None:
        """Start every stage, join every stage, re-raise the first error."""
        if not self.stages:
            raise ValueError("pipeline has no stages")
        for s in self.stages:
            s.start()
        self.join()

    def join(self) -> None:
        for s in self.stages:
            s.join()
        for s in self.stages:
            if s.errors:
                raise PipelineError(
                    f"stage {s.name!r} of {self.name!r} failed"
                ) from s.errors[0]

    # -- telemetry ---------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        return {
            "stages": {
                s.name: {
                    "workers": s.workers,
                    "items": s.items_processed,
                    "busy_seconds": s.busy_seconds,
                }
                for s in self.stages
            },
            "queues": {
                q.name: {"peak_depth": q.peak_depth, "total_put": q.total_put}
                for q in self.queues
            },
        }

    def utilization(self, wall_seconds: float) -> dict[str, float]:
        """Per-stage busy fraction over a run's wall time.

        The stage with utilization near 1.0 is the pipeline's bottleneck
        (the paper identifies its GPU-compute stage this way in Fig. 10's
        discussion); stages near 0 are over-provisioned.
        """
        if wall_seconds <= 0:
            raise ValueError("wall time must be positive")
        return {
            s.name: s.busy_seconds / (s.workers * wall_seconds)
            for s in self.stages
        }
