"""FFT plans, planning modes, and the plan cache (FFTW-style).

The paper (Section IV.A) describes FFTW's two-phase operation -- *plan*, then
*execute* -- and the four planning modes it evaluated (``estimate``,
``measure``, ``patient``, ``exhaustive``).  Planning picks an execution
strategy for a fixed problem (shape, transform kind); its cost is amortized by
caching and by *wisdom* (serialized planning decisions).

This module reproduces that structure:

- ``ESTIMATE`` picks a strategy from a heuristic without timing anything.
- ``MEASURE`` / ``PATIENT`` / ``EXHAUSTIVE`` time candidate strategies for an
  increasing number of trials and keep the fastest, exactly like FFTW's
  escalating search effort.

Two strategies exist for every problem:

``direct``
    Transform at the native size.
``padded``
    Zero-pad each axis to the next smooth length (products of 2/3/5/7) and
    transform at the padded size.  This is the paper's future-work "padding
    image tiles" optimization; whether it wins is decided empirically at
    planning time, as FFTW would.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

import numpy as np
import scipy.fft as _sfft

from repro.fftlib.smooth import next_smooth_shape, pad_to_shape


class PlanningMode(Enum):
    """FFTW planning rigor levels (ordered by planning effort)."""

    ESTIMATE = "estimate"
    MEASURE = "measure"
    PATIENT = "patient"
    EXHAUSTIVE = "exhaustive"

    @property
    def trials(self) -> int:
        """Number of timing trials per candidate strategy."""
        return {"estimate": 0, "measure": 1, "patient": 3, "exhaustive": 5}[self.value]


class TransformKind(Enum):
    """Supported transform kinds.

    ``R2C``/``C2R`` are the paper's second future-work optimization
    (real-to-complex transforms halve both work and footprint).
    """

    C2C_FORWARD = "c2c_forward"
    C2C_INVERSE = "c2c_inverse"
    R2C = "r2c"
    C2R = "c2r"


@dataclass(frozen=True)
class PlanKey:
    """Identity of a planning problem: shape + kind (mode picks rigor only).

    ``shape`` is always the *spatial* problem shape ``(h, w)`` -- for
    ``C2R`` plans the executed input is the half-spectrum
    ``(h, w // 2 + 1)`` and ``shape`` names the real output, which is the
    information the inverse needs anyway (the half-spectrum alone cannot
    distinguish even from odd widths).
    """

    shape: tuple[int, ...]
    kind: TransformKind

    def to_json(self) -> dict:
        return {"shape": list(self.shape), "kind": self.kind.value}

    @staticmethod
    def from_json(d: dict) -> "PlanKey":
        return PlanKey(tuple(d["shape"]), TransformKind(d["kind"]))


def spectrum_shape(shape: tuple[int, ...]) -> tuple[int, ...]:
    """Half-spectrum shape of a real array of ``shape`` (rfft2 output)."""
    return (*shape[:-1], shape[-1] // 2 + 1)


def _raw_transform(
    kind: TransformKind,
    a: np.ndarray,
    inverse_shape=None,
    overwrite_input: bool = False,
) -> np.ndarray:
    if kind is TransformKind.C2C_FORWARD:
        return _sfft.fft2(a, overwrite_x=overwrite_input)
    if kind is TransformKind.C2C_INVERSE:
        return _sfft.ifft2(a, overwrite_x=overwrite_input)
    if kind is TransformKind.R2C:
        return _sfft.rfft2(a, overwrite_x=overwrite_input)
    if kind is TransformKind.C2R:
        # irfft2 transforms the last two axes; for batched (3-D) problems
        # the leading axis is untouched, so only the spatial tail of the
        # plan's shape parameterizes the inverse.
        return _sfft.irfft2(
            a, s=tuple(inverse_shape)[-2:], overwrite_x=overwrite_input
        )
    raise ValueError(kind)  # pragma: no cover - exhaustive enum


class Plan:
    """An executable FFT plan for one problem shape and transform kind.

    A plan owns its padded workspace (when the ``padded`` strategy won) so
    repeated executions allocate nothing beyond the transform output.  Plans
    are *not* thread-safe for concurrent execution because of the shared
    workspace; each pipeline thread should hold its own plan (as FFTW
    requires of its plan/buffer pairs), or pass ``reuse_workspace=False``.
    """

    def __init__(
        self,
        key: PlanKey,
        strategy: str,
        fft_shape: tuple[int, ...],
        planning_time: float = 0.0,
    ) -> None:
        if strategy not in ("direct", "padded"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.key = key
        self.strategy = strategy
        self.fft_shape = fft_shape
        self.planning_time = planning_time
        self.executions = 0
        self._workspace: np.ndarray | None = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Plan({self.key.shape}, {self.key.kind.value}, "
            f"strategy={self.strategy}, fft_shape={self.fft_shape})"
        )

    @property
    def input_shape(self) -> tuple[int, ...]:
        """Shape ``execute`` expects: half-spectrum for C2R, spatial else."""
        if self.key.kind is TransformKind.C2R:
            return spectrum_shape(self.key.shape)
        return self.key.shape

    def _padded_input(self, a: np.ndarray, reuse_workspace: bool) -> np.ndarray:
        if not reuse_workspace:
            return pad_to_shape(a, self.fft_shape)
        if self._workspace is None or self._workspace.dtype != a.dtype:
            self._workspace = np.zeros(self.fft_shape, dtype=a.dtype)
        return pad_to_shape(a, self.fft_shape, out=self._workspace)

    def execute(
        self,
        a: np.ndarray,
        reuse_workspace: bool = True,
        overwrite_input: bool = False,
    ) -> np.ndarray:
        """Run the transform on ``a`` (shape must match the plan key).

        ``overwrite_input=True`` permits the backend to clobber ``a``
        (scipy's ``overwrite_x``); use it when ``a`` is scratch the caller
        owns, e.g. a workspace buffer that will be refilled next pair.
        """
        if tuple(a.shape) != self.input_shape:
            raise ValueError(
                f"plan is for input shape {self.input_shape}, "
                f"got array of shape {a.shape}"
            )
        self.executions += 1
        kind = self.key.kind
        if self.strategy == "direct":
            return _raw_transform(
                kind, a, inverse_shape=self.key.shape,
                overwrite_input=overwrite_input,
            )
        padded = self._padded_input(a, reuse_workspace)
        return _raw_transform(
            kind, padded, inverse_shape=self.fft_shape, overwrite_input=True
        )


def _time_strategy(fn: Callable[[], np.ndarray], trials: int) -> float:
    """Best-of-``trials`` wall time for one candidate execution."""
    best = float("inf")
    for _ in range(trials):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class PlanCache:
    """Caches plans per problem and holds wisdom (FFTW-style).

    The cache is thread-safe for plan *lookup/creation*; executing the
    returned plan concurrently from several threads is the caller's business
    (see :class:`Plan`).
    """

    def __init__(self) -> None:
        self._plans: dict[PlanKey, Plan] = {}
        self._wisdom: dict[PlanKey, str] = {}
        self._lock = threading.Lock()
        self.planning_seconds = 0.0
        #: Plan-lookup accounting: ``hits`` counts :meth:`plan` calls
        #: answered from the cache, ``misses`` counts plan creations.
        #: A warm worker serving its second same-geometry job shows
        #: hits > 0 and misses == 0 -- the amortization the service's
        #: persistent pools exist for.
        self.hits = 0
        self.misses = 0
        #: Per-problem lookup accounting (``PlanKey -> [hits, misses]``).
        #: Coarse-to-fine runs plan at two resolutions in one cache;
        #: the per-shape split is what proves the coarse-shape plans are
        #: being reused (and never cross-contaminate the full-resolution
        #: entries, which stay keyed separately).
        self._key_stats: dict[PlanKey, list[int]] = {}

    def __len__(self) -> int:
        return len(self._plans)

    def cached(
        self,
        shape: tuple[int, ...],
        kind: TransformKind = TransformKind.C2C_FORWARD,
    ) -> Plan | None:
        """Return the cached plan for ``shape``/``kind`` without creating one."""
        key = PlanKey(tuple(int(n) for n in shape), kind)
        with self._lock:
            return self._plans.get(key)

    def plan(
        self,
        shape: tuple[int, ...],
        kind: TransformKind = TransformKind.C2C_FORWARD,
        mode: PlanningMode = PlanningMode.ESTIMATE,
        allow_padding: bool = True,
    ) -> Plan:
        """Return (creating if needed) the plan for ``shape``/``kind``.

        Wisdom short-circuits planning: a problem whose strategy was already
        decided (by a previous plan call or imported wisdom) is never
        re-measured, which is how the paper amortizes its 4 min 20 s patient
        planning cost.

        ``allow_padding=False`` restricts planning to the shape-preserving
        ``direct`` strategy.  Callers that do their own padding and depend on
        the output shape (e.g. the correlation core, which must interpret
        peak coordinates modulo the transform size) must set this.
        """
        key = PlanKey(tuple(int(n) for n in shape), kind)
        with self._lock:
            counts = self._key_stats.setdefault(key, [0, 0])
            cached = self._plans.get(key)
            if cached is not None and not (
                allow_padding is False and cached.strategy != "direct"
            ):
                self.hits += 1
                counts[0] += 1
                return cached
            self.misses += 1
            counts[1] += 1
            if not allow_padding:
                plan = Plan(key, "direct", key.shape, planning_time=0.0)
                # Cache only if nothing better is already cached.
                self._plans.setdefault(key, plan)
                return plan
            plan = self._make_plan(key, mode)
            self._plans[key] = plan
            self._wisdom[key] = plan.strategy
            self.planning_seconds += plan.planning_time
            return plan

    def _make_plan(self, key: PlanKey, mode: PlanningMode) -> Plan:
        if key.kind is TransformKind.C2R:
            # Padding a half-spectrum is not shape-preserving in any useful
            # sense (the inverse must land exactly on the spatial key shape),
            # so C2R plans are always direct.
            return Plan(key, "direct", key.shape, planning_time=0.0)
        padded_shape = next_smooth_shape(key.shape)
        if key in self._wisdom:
            strategy = self._wisdom[key]
            fft_shape = padded_shape if strategy == "padded" else key.shape
            return Plan(key, strategy, fft_shape, planning_time=0.0)
        if mode is PlanningMode.ESTIMATE or padded_shape == key.shape:
            # Heuristic only: native size when already smooth, else direct
            # (FFTW estimate mode also never measures; it guesses).
            return Plan(key, "direct", key.shape, planning_time=0.0)

        t0 = time.perf_counter()
        trials = mode.trials
        dtype = np.complex128 if key.kind in (
            TransformKind.C2C_FORWARD, TransformKind.C2C_INVERSE
        ) else np.float64
        sample = np.ones(key.shape, dtype=dtype)
        direct = Plan(key, "direct", key.shape)
        padded = Plan(key, "padded", padded_shape)
        t_direct = _time_strategy(lambda: direct.execute(sample), trials)
        t_padded = _time_strategy(lambda: padded.execute(sample), trials)
        planning_time = time.perf_counter() - t0
        win = direct if t_direct <= t_padded else padded
        return Plan(key, win.strategy, win.fft_shape, planning_time=planning_time)

    def stats(self) -> dict:
        """JSON-able lookup accounting (entries, hits, misses).

        ``per_shape`` breaks the totals down by planning problem, one
        entry per ``(shape, kind)``, largest shape first -- in a
        coarse-to-fine run the full-resolution and coarse shapes appear
        as separate rows, each with its own hit/miss/execution counts.
        """
        with self._lock:
            per_shape = [
                {
                    "shape": list(key.shape),
                    "kind": key.kind.value,
                    "hits": counts[0],
                    "misses": counts[1],
                    "executions": (
                        self._plans[key].executions
                        if key in self._plans else 0
                    ),
                }
                for key, counts in sorted(
                    self._key_stats.items(),
                    key=lambda kv: (kv[0].shape, kv[0].kind.value),
                    reverse=True,
                )
            ]
            return {
                "entries": len(self._plans),
                "hits": self.hits,
                "misses": self.misses,
                "per_shape": per_shape,
            }

    # -- wisdom -----------------------------------------------------------

    def export_wisdom(self) -> str:
        """Serialize planning decisions to a JSON string."""
        with self._lock:
            entries = [
                {"key": k.to_json(), "strategy": v} for k, v in self._wisdom.items()
            ]
        return json.dumps({"version": 1, "wisdom": entries})

    def import_wisdom(self, blob: str) -> int:
        """Load wisdom previously produced by :meth:`export_wisdom`.

        Returns the number of entries imported.  Imported wisdom wins over
        nothing (existing entries are kept), matching FFTW semantics where
        wisdom accumulates.
        """
        data = json.loads(blob)
        if data.get("version") != 1:
            raise ValueError("unsupported wisdom version")
        n = 0
        with self._lock:
            for entry in data["wisdom"]:
                key = PlanKey.from_json(entry["key"])
                if key not in self._wisdom:
                    self._wisdom[key] = entry["strategy"]
                    n += 1
        return n


_default_cache = PlanCache()


def default_cache() -> PlanCache:
    """Process-wide plan cache used by :mod:`repro.fftlib.transforms`."""
    return _default_cache
