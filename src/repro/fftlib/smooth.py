"""Smooth-size ("nice" FFT length) utilities.

FFT libraries built on divide-and-conquer (FFTW, cuFFT, pocketfft) are fastest
when every axis length factors into small primes.  The paper notes that its
1392x1040 microscope tiles do *not* have this property and proposes padding
tiles (e.g. to 1536x1536) as a future optimization.  These helpers implement
that optimization.

A length is *smooth* when it is a product of powers of the given radices
(2, 3, 5 and 7 by default, matching the paper's Section III discussion).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

DEFAULT_RADICES: tuple[int, ...] = (2, 3, 5, 7)


def is_smooth(n: int, radices: Sequence[int] = DEFAULT_RADICES) -> bool:
    """Return ``True`` when ``n`` factors entirely into ``radices``.

    ``n`` must be a positive integer; ``1`` is smooth by convention.
    """
    if n < 1:
        raise ValueError(f"length must be positive, got {n}")
    for p in sorted(set(radices)):
        while n % p == 0:
            n //= p
    return n == 1


def next_smooth(n: int, radices: Sequence[int] = DEFAULT_RADICES) -> int:
    """Return the smallest smooth length ``>= n``.

    This is the padding target used when planning a transform in a padded
    strategy.  A simple increasing scan is fine here: smooth numbers are
    dense (gaps are tiny relative to ``n`` for the radix set {2,3,5,7}).
    """
    if n < 1:
        raise ValueError(f"length must be positive, got {n}")
    m = n
    while not is_smooth(m, radices):
        m += 1
    return m


def next_smooth_shape(
    shape: Sequence[int], radices: Sequence[int] = DEFAULT_RADICES
) -> tuple[int, ...]:
    """Per-axis :func:`next_smooth` for a full array shape."""
    return tuple(next_smooth(int(n), radices) for n in shape)


def pad_to_shape(
    a: np.ndarray, shape: Sequence[int], out: np.ndarray | None = None
) -> np.ndarray:
    """Zero-pad 2-D array ``a`` at the bottom/right up to ``shape``.

    When ``out`` is given it is used as the destination workspace (it must
    have the requested shape); this lets callers reuse one padded buffer per
    plan instead of allocating per transform, per the memory-reuse guidance
    the pipeline relies on.
    """
    shape = tuple(int(n) for n in shape)
    if a.ndim != len(shape):
        raise ValueError(f"rank mismatch: array {a.shape} vs target {shape}")
    if any(s < n for s, n in zip(shape, a.shape)):
        raise ValueError(f"target shape {shape} smaller than array {a.shape}")
    if out is None:
        out = np.zeros(shape, dtype=a.dtype)
    else:
        if out.shape != shape:
            raise ValueError(f"workspace shape {out.shape} != target {shape}")
        out[...] = 0
    out[tuple(slice(0, n) for n in a.shape)] = a
    return out
