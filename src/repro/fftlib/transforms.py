"""Convenience transform entry points over the plan cache.

These mirror the call sites in the paper's Fig. 2 pseudo-code
(``FFT_2d`` / ``iFFT_2d``) and default to the process-wide plan cache with
shape-preserving plans, so ``ifft2(fft2(a))`` round-trips exactly.
"""

from __future__ import annotations

import numpy as np

from repro.fftlib.plans import PlanCache, PlanningMode, TransformKind, default_cache


def _cache(cache: PlanCache | None) -> PlanCache:
    return cache if cache is not None else default_cache()


def fft2(
    a: np.ndarray,
    cache: PlanCache | None = None,
    mode: PlanningMode = PlanningMode.ESTIMATE,
) -> np.ndarray:
    """Forward 2-D complex transform of ``a`` (shape-preserving)."""
    plan = _cache(cache).plan(a.shape, TransformKind.C2C_FORWARD, mode, allow_padding=False)
    return plan.execute(np.asarray(a, dtype=np.complex128))


def ifft2(
    a: np.ndarray,
    cache: PlanCache | None = None,
    mode: PlanningMode = PlanningMode.ESTIMATE,
) -> np.ndarray:
    """Inverse 2-D complex transform of ``a`` (shape-preserving)."""
    plan = _cache(cache).plan(a.shape, TransformKind.C2C_INVERSE, mode, allow_padding=False)
    return plan.execute(np.asarray(a, dtype=np.complex128))


def rfft2(
    a: np.ndarray,
    cache: PlanCache | None = None,
    mode: PlanningMode = PlanningMode.ESTIMATE,
) -> np.ndarray:
    """Real-to-complex forward transform (the paper's future-work variant).

    Output has the half-spectrum shape ``(h, w // 2 + 1)``; the inverse is
    :func:`irfft2` with the original shape.
    """
    a = np.asarray(a, dtype=np.float64)
    plan = _cache(cache).plan(a.shape, TransformKind.R2C, mode, allow_padding=False)
    return plan.execute(a)


def irfft2(
    a: np.ndarray,
    shape: tuple[int, int],
    cache: PlanCache | None = None,
    mode: PlanningMode = PlanningMode.ESTIMATE,
) -> np.ndarray:
    """Complex-to-real inverse of :func:`rfft2` producing ``shape``.

    C2R plans are keyed by the target *spatial* shape, which the
    half-spectrum alone does not determine (w could be 2*(kw-1) or
    2*(kw-1)+1); the plan carries it.
    """
    plan = _cache(cache).plan(
        tuple(shape), TransformKind.C2R, mode, allow_padding=False
    )
    return plan.execute(np.asarray(a, dtype=np.complex128))
