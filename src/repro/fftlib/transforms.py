"""Convenience transform entry points over the plan cache.

These mirror the call sites in the paper's Fig. 2 pseudo-code
(``FFT_2d`` / ``iFFT_2d``) and default to the process-wide plan cache with
shape-preserving plans, so ``ifft2(fft2(a))`` round-trips exactly.
"""

from __future__ import annotations

import numpy as np

from repro.fftlib.plans import PlanCache, PlanningMode, TransformKind, default_cache


def _cache(cache: PlanCache | None) -> PlanCache:
    return cache if cache is not None else default_cache()


def fft2(
    a: np.ndarray,
    cache: PlanCache | None = None,
    mode: PlanningMode = PlanningMode.ESTIMATE,
) -> np.ndarray:
    """Forward 2-D complex transform of ``a`` (shape-preserving)."""
    plan = _cache(cache).plan(a.shape, TransformKind.C2C_FORWARD, mode, allow_padding=False)
    return plan.execute(np.asarray(a, dtype=np.complex128))


def ifft2(
    a: np.ndarray,
    cache: PlanCache | None = None,
    mode: PlanningMode = PlanningMode.ESTIMATE,
) -> np.ndarray:
    """Inverse 2-D complex transform of ``a`` (shape-preserving)."""
    plan = _cache(cache).plan(a.shape, TransformKind.C2C_INVERSE, mode, allow_padding=False)
    return plan.execute(np.asarray(a, dtype=np.complex128))


def rfft2(
    a: np.ndarray,
    cache: PlanCache | None = None,
    mode: PlanningMode = PlanningMode.ESTIMATE,
) -> np.ndarray:
    """Real-to-complex forward transform (the paper's future-work variant).

    Output has the half-spectrum shape ``(h, w // 2 + 1)``; the inverse is
    :func:`irfft2` with the original shape.
    """
    a = np.asarray(a, dtype=np.float64)
    plan = _cache(cache).plan(a.shape, TransformKind.R2C, mode, allow_padding=False)
    return plan.execute(a)


def irfft2(
    a: np.ndarray,
    shape: tuple[int, int],
    cache: PlanCache | None = None,
    mode: PlanningMode = PlanningMode.ESTIMATE,
) -> np.ndarray:
    """Complex-to-real inverse of :func:`rfft2` producing ``shape``.

    C2R plans are keyed by the target *spatial* shape, which the
    half-spectrum alone does not determine (w could be 2*(kw-1) or
    2*(kw-1)+1); the plan carries it.
    """
    plan = _cache(cache).plan(
        tuple(shape), TransformKind.C2R, mode, allow_padding=False
    )
    return plan.execute(np.asarray(a, dtype=np.complex128))


def batch_rfft2(
    stack: np.ndarray,
    cache: PlanCache | None = None,
    mode: PlanningMode = PlanningMode.ESTIMATE,
) -> np.ndarray:
    """Batched R2C transform of a ``(k, h, w)`` stack of same-shape tiles.

    One backend call transforms every slice over the trailing two axes
    (the standard fix for many-small-FFT workloads: per-transform Python
    and dispatch overhead is paid once per *batch* instead of once per
    tile).  The plan is keyed on the full ``(k, h, w)`` shape, so each
    distinct batch size gets its own cached plan.  Output slices are
    bit-identical to per-tile :func:`rfft2` -- the pooled backend runs
    the same 2-D transform per slice, so batching is purely an overhead
    optimization, never a numerics change.
    """
    stack = np.asarray(stack, dtype=np.float64)
    if stack.ndim != 3:
        raise ValueError(f"expected a (k, h, w) stack, got shape {stack.shape}")
    plan = _cache(cache).plan(
        stack.shape, TransformKind.R2C, mode, allow_padding=False
    )
    return plan.execute(stack)


def batch_irfft2(
    stack: np.ndarray,
    shape: tuple[int, int],
    cache: PlanCache | None = None,
    mode: PlanningMode = PlanningMode.ESTIMATE,
) -> np.ndarray:
    """Batched C2R inverse of :func:`batch_rfft2`.

    ``shape`` is the *spatial* ``(h, w)`` of each output slice; the batch
    size comes from the stack's leading axis.
    """
    stack = np.asarray(stack, dtype=np.complex128)
    if stack.ndim != 3:
        raise ValueError(f"expected a (k, h, kw) stack, got shape {stack.shape}")
    plan = _cache(cache).plan(
        (stack.shape[0], *shape), TransformKind.C2R, mode, allow_padding=False
    )
    return plan.execute(stack)
