"""FFTW-like transform layer.

The paper's reference implementation uses FFTW3 on the CPU and cuFFT on the
GPU.  FFTW exposes *plans*: a plan is created once for a given problem shape
(in a *planning mode* that trades planning time for execution speed) and then
executed many times.  The paper amortizes a 4 min 20 s ``patient`` planning
step over thousands of 1392x1040 transforms and reports a 2x execution-speed
improvement over ``estimate`` mode.

This package reproduces the plan/execute structure on top of ``scipy.fft``:

- :mod:`repro.fftlib.smooth` -- "nice size" search (products of 2/3/5/7) and
  pad/crop helpers; padding tiles to smooth sizes is one of the paper's
  future-work optimizations (Section VI.A).
- :mod:`repro.fftlib.plans` -- :class:`Plan`, :class:`PlanCache`,
  :class:`PlanningMode`, and wisdom import/export.
- :mod:`repro.fftlib.transforms` -- convenience entry points used by the
  stitching kernels.
"""

from repro.fftlib.plans import (
    Plan,
    PlanCache,
    PlanningMode,
    TransformKind,
    default_cache,
)
from repro.fftlib.smooth import is_smooth, next_smooth, pad_to_shape
from repro.fftlib.transforms import (
    batch_irfft2,
    batch_rfft2,
    fft2,
    ifft2,
    irfft2,
    rfft2,
)

__all__ = [
    "Plan",
    "PlanCache",
    "PlanningMode",
    "TransformKind",
    "default_cache",
    "fft2",
    "ifft2",
    "rfft2",
    "irfft2",
    "batch_rfft2",
    "batch_irfft2",
    "is_smooth",
    "next_smooth",
    "pad_to_shape",
]
