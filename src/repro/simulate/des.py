"""Deterministic task-graph scheduler (list scheduling over finite resources).

The simulator executes a DAG of :class:`Op` objects.  Each op needs one
slot of one resource for ``duration`` virtual seconds and may depend on
other ops.  Dispatch is FIFO per resource in (ready-time, submission-order)
order -- the discipline of a monitor queue feeding a fixed thread pool,
which is exactly what the pipelined implementations do.

Determinism: ties are broken by submission sequence number, never by hash
order or wall clock, so a given graph always produces the same schedule.

Invariants (tested property-based):

- an op never starts before its dependencies end;
- a resource never runs more ops concurrently than its capacity;
- the makespan is at least the critical-path length and at least every
  resource's total-work / capacity bound.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field


@dataclass
class Op:
    """One scheduled operation (created via :meth:`TaskGraphSimulator.op`)."""

    seq: int
    name: str
    resource: str
    duration: float
    deps: tuple["Op", ...] = ()
    # Filled by run():
    start: float = -1.0
    end: float = -1.0

    def __hash__(self) -> int:
        return self.seq

    @property
    def scheduled(self) -> bool:
        return self.start >= 0.0


class TaskGraphSimulator:
    """Build a resource-constrained op graph, then :meth:`run` it."""

    def __init__(self) -> None:
        self._capacity: dict[str, int] = {}
        self._ops: list[Op] = []
        self._ran = False

    # -- construction --------------------------------------------------------

    def resource(self, name: str, capacity: int) -> str:
        """Declare a resource (idempotent only with equal capacity)."""
        if capacity < 1:
            raise ValueError(f"resource {name!r} needs capacity >= 1")
        if name in self._capacity and self._capacity[name] != capacity:
            raise ValueError(
                f"resource {name!r} redeclared with capacity "
                f"{capacity} != {self._capacity[name]}"
            )
        self._capacity[name] = capacity
        return name

    def op(
        self,
        name: str,
        resource: str,
        duration: float,
        deps: list[Op] | tuple[Op, ...] = (),
    ) -> Op:
        if resource not in self._capacity:
            raise ValueError(f"unknown resource {resource!r}")
        if duration < 0:
            raise ValueError(f"negative duration for {name!r}")
        o = Op(
            seq=len(self._ops),
            name=name,
            resource=resource,
            duration=float(duration),
            deps=tuple(deps),
        )
        self._ops.append(o)
        return o

    @property
    def ops(self) -> list[Op]:
        return self._ops

    # -- execution ----------------------------------------------------------

    def run(self) -> float:
        """Schedule every op; returns the makespan (0.0 for empty graphs)."""
        if self._ran:
            raise RuntimeError("simulator already ran; build a fresh one")
        self._ran = True

        remaining = {o.seq: len(o.deps) for o in self._ops}
        dependents: dict[int, list[Op]] = {o.seq: [] for o in self._ops}
        for o in self._ops:
            for d in o.deps:
                if d.seq >= o.seq:
                    raise ValueError(
                        f"op {o.name!r} depends on later/equal op {d.name!r}"
                    )
                dependents[d.seq].append(o)

        # Per-resource ready heaps: (ready_time, seq, op).
        ready: dict[str, list] = {r: [] for r in self._capacity}
        free: dict[str, int] = dict(self._capacity)
        completions: list[tuple[float, int, Op]] = []  # (end, seq, op)
        ready_time: dict[int, float] = {}

        def mark_ready(o: Op, t: float) -> None:
            ready_time[o.seq] = t
            heapq.heappush(ready[o.resource], (t, o.seq, o))

        for o in self._ops:
            if remaining[o.seq] == 0:
                mark_ready(o, 0.0)

        now = 0.0
        n_done = 0
        makespan = 0.0
        while n_done < len(self._ops):
            # Start everything startable at `now`.
            started = True
            while started:
                started = False
                for rname, heap_ in ready.items():
                    while free[rname] > 0 and heap_ and heap_[0][0] <= now:
                        _, _, o = heapq.heappop(heap_)
                        o.start = now
                        o.end = now + o.duration
                        free[rname] -= 1
                        heapq.heappush(completions, (o.end, o.seq, o))
                        started = True
            # Advance time to the next completion (or next future ready op
            # on a resource with free capacity).
            candidates = []
            if completions:
                candidates.append(completions[0][0])
            for rname, heap_ in ready.items():
                if free[rname] > 0 and heap_:
                    candidates.append(heap_[0][0])
            if not candidates:
                if n_done < len(self._ops):
                    stuck = [o.name for o in self._ops if not o.scheduled][:5]
                    raise RuntimeError(
                        f"deadlock: {len(self._ops) - n_done} ops unschedulable "
                        f"(first: {stuck}) -- dependency cycle?"
                    )
                break
            now = max(now, min(candidates))
            # Retire completions at `now`.
            while completions and completions[0][0] <= now:
                _, _, o = heapq.heappop(completions)
                free[o.resource] += 1
                n_done += 1
                makespan = max(makespan, o.end)
                for dep in dependents[o.seq]:
                    remaining[dep.seq] -= 1
                    if remaining[dep.seq] == 0:
                        mark_ready(dep, o.end)
        return makespan

    # -- analysis ---------------------------------------------------------------

    def busy_time(self, resource: str) -> float:
        """Sum of op durations on a resource (not union -- capacity > 1)."""
        return sum(o.duration for o in self._ops if o.resource == resource)

    def utilization(self, resource: str, makespan: float) -> float:
        cap = self._capacity[resource]
        if makespan <= 0:
            return 0.0
        return self.busy_time(resource) / (cap * makespan)

    def density(self, resource: str, t0: float | None = None, t1: float | None = None) -> float:
        """Busy fraction of a (capacity-1) resource over ``[t0, t1]``.

        This is the Fig. 7 / Fig. 9 "kernel density" metric: merge the
        resource's busy intervals clipped to the window and divide by the
        window length.
        """
        spans = sorted(
            (o.start, o.end)
            for o in self._ops
            if o.resource == resource and o.scheduled and o.duration > 0
        )
        if not spans:
            return 0.0
        lo = spans[0][0] if t0 is None else t0
        hi = max(e for _, e in spans) if t1 is None else t1
        if hi <= lo:
            return 0.0
        total = 0.0
        cur_s = cur_e = None
        for s, e in spans:
            s, e = max(s, lo), min(e, hi)
            if e <= s:
                continue
            if cur_e is None or s > cur_e:
                if cur_e is not None:
                    total += cur_e - cur_s
                cur_s, cur_e = s, e
            else:
                cur_e = max(cur_e, e)
        if cur_e is not None:
            total += cur_e - cur_s
        return total / (hi - lo)

    def critical_path(self) -> float:
        """Longest dependency chain ignoring resource contention."""
        longest: dict[int, float] = {}
        for o in self._ops:  # already topologically ordered by construction
            longest[o.seq] = o.duration + max(
                (longest[d.seq] for d in o.deps), default=0.0
            )
        return max(longest.values(), default=0.0)
