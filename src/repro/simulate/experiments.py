"""Paper-scale experiment drivers: one function per table/figure.

Each driver returns plain data (lists of rows / dicts) that the benchmark
harness formats; nothing here prints.  All drivers default to the paper's
workload (42x59 grid of 1392x1040 tiles) and machine models but accept
smaller grids so the test suite can exercise them quickly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memmodel.vm import VirtualMemoryModel
from repro.simulate.costmodel import (
    PAPER_GRID,
    PAPER_MACHINE,
    PAPER_MACHINE_24GB,
    PAPER_TILE,
    MachineModel,
)
from repro.simulate.schedules import (
    SimResult,
    simulate_fiji,
    simulate_mt_cpu,
    simulate_pipelined_cpu,
    simulate_pipelined_gpu,
    simulate_simple_cpu,
    simulate_simple_gpu,
)


@dataclass
class Table2Row:
    implementation: str
    seconds: float
    speedup_vs_simple_cpu: float
    speedup_vs_imagej: float
    cpu_threads: int | None
    gpus: int | None
    paper_seconds: float


#: Published Table II values (end-to-end seconds for the 42x59 grid).
PAPER_TABLE2 = {
    "imagej-fiji": 3.6 * 3600,
    "simple-cpu": 10.6 * 60,
    "mt-cpu": 1.6 * 60,
    "pipelined-cpu": 1.4 * 60,
    "simple-gpu": 9.3 * 60,
    "pipelined-gpu-1": 49.7,
    "pipelined-gpu-2": 26.6,
}


def table2_runtimes(
    machine: MachineModel = PAPER_MACHINE,
    rows: int = PAPER_GRID[0],
    cols: int = PAPER_GRID[1],
    tile: tuple[int, int] = PAPER_TILE,
    threads: int = 16,
) -> list[Table2Row]:
    """Reproduce Table II: run times and speedups for all implementations."""
    runs: list[tuple[str, SimResult, int | None, int | None]] = []
    fiji = simulate_fiji(machine, rows, cols, tile)
    runs.append(("imagej-fiji", fiji, 6, None))
    simple = simulate_simple_cpu(machine, rows, cols, tile)
    runs.append(("simple-cpu", simple, 1, None))
    runs.append(("mt-cpu", simulate_mt_cpu(machine, rows, cols, threads, tile), threads, None))
    runs.append((
        "pipelined-cpu",
        simulate_pipelined_cpu(machine, rows, cols, threads, tile),
        threads, None,
    ))
    runs.append(("simple-gpu", simulate_simple_gpu(machine, rows, cols, tile), 1, 1))
    runs.append((
        "pipelined-gpu-1",
        simulate_pipelined_gpu(machine, rows, cols, 1, tile=tile),
        threads, 1,
    ))
    if machine.n_gpus >= 2:
        runs.append((
            "pipelined-gpu-2",
            simulate_pipelined_gpu(machine, rows, cols, 2, tile=tile),
            threads, 2,
        ))
    out = []
    t_simple = simple.makespan_seconds
    t_fiji = fiji.makespan_seconds
    for name, res, thr, gpus in runs:
        out.append(
            Table2Row(
                implementation=name,
                seconds=res.makespan_seconds,
                speedup_vs_simple_cpu=t_simple / res.makespan_seconds,
                speedup_vs_imagej=t_fiji / res.makespan_seconds,
                cpu_threads=thr,
                gpus=gpus,
                paper_seconds=PAPER_TABLE2.get(name, float("nan")),
            )
        )
    return out


# ---------------------------------------------------------------------------
# Fig. 5: virtual-memory performance cliff
# ---------------------------------------------------------------------------


def fig5_vm_cliff(
    machine: MachineModel = PAPER_MACHINE_24GB,
    tile_counts: tuple[int, ...] = tuple(range(512, 1025, 32)),
    thread_counts: tuple[int, ...] = tuple(range(1, 17)),
    tile: tuple[int, int] = PAPER_TILE,
    bytes_per_tile: float | None = None,
) -> dict:
    """Speedup surface of an FFT-only workload that never frees memory.

    The workload reads ``N`` tiles and computes their transforms, keeping
    everything resident (the paper's Fig. 5 microbenchmark).  Once the
    working set crosses RAM, every further transform pays page-fault
    service time that serializes on the disk, collapsing the speedup
    across all thread counts at the same tile count -- the cliff.

    Returns ``{"tiles": [...], "threads": [...], "speedup": {(N, T): s},
    "times": {(N, T): seconds}, "cliff_at": N}``.
    """
    hw = tile[0] * tile[1]
    if bytes_per_tile is None:
        # Transform (16 B/px complex double) + float32 working image
        # (4 B/px) + ~1 B/px of allocator/page-table overhead.  At 21 B/px
        # the working set crosses 24 GiB between 832 and 864 tiles --
        # exactly where the paper observes the cliff.
        bytes_per_tile = 21.0 * hw
    vm = VirtualMemoryModel(ram_bytes=machine.ram_bytes)
    cpu = machine.cpu
    per_tile_compute = cpu.decode(hw) + cpu.fft(hw)
    per_tile_read = cpu.read(hw)

    times: dict[tuple[int, int], float] = {}
    for n in tile_counts:
        # Average paging multiplier over the accumulation trajectory.
        steps = 64
        acc = 0.0
        for k in range(1, steps + 1):
            acc += vm.slowdown(bytes_per_tile * n * k / steps)
        avg_slowdown = acc / steps
        # Faulted bytes must be re-fetched through the cold device.
        overcommit = max(0.0, bytes_per_tile * n - machine.ram_bytes)
        fault_seconds = overcommit / machine.page_fault_bandwidth
        for t in thread_counts:
            eff = machine.effective_parallelism(t)
            compute = n * per_tile_compute * avg_slowdown / eff
            reads = n * per_tile_read
            times[(n, t)] = compute + reads + fault_seconds
    speedup = {
        (n, t): times[(n, 1)] / times[(n, t)]
        for n in tile_counts
        for t in thread_counts
    }
    cliff_at = next(
        (n for n in tile_counts if bytes_per_tile * n > machine.ram_bytes), None
    )
    return {
        "tiles": list(tile_counts),
        "threads": list(thread_counts),
        "times": times,
        "speedup": speedup,
        "cliff_at": cliff_at,
        "bytes_per_tile": bytes_per_tile,
    }


# ---------------------------------------------------------------------------
# Figs. 7 & 9: execution profiles (8x8 grid)
# ---------------------------------------------------------------------------


def fig7_fig9_profiles(
    machine: MachineModel = PAPER_MACHINE,
    rows: int = 8,
    cols: int = 8,
    tile: tuple[int, int] = PAPER_TILE,
) -> dict:
    """Kernel-density comparison of Simple-GPU vs Pipelined-GPU (8x8 grid).

    Returns per-implementation makespan, compute-engine density (the
    fraction of the run during which a kernel is executing -- sparse with
    gaps in Fig. 7, dense in Fig. 9), and engine utilizations.
    """
    simple = simulate_simple_gpu(machine, rows, cols, tile)
    piped = simulate_pipelined_gpu(machine, rows, cols, 1, tile=tile)

    def profile(res: SimResult, compute: str) -> dict:
        return {
            "makespan": res.makespan_seconds,
            "kernel_density": res.sim.density(compute),
            "kernel_count": sum(
                1 for o in res.sim.ops if o.resource == compute
            ),
            "h2d_busy": res.sim.busy_time(compute.replace("compute", "h2d")),
        }

    return {
        "simple-gpu": profile(simple, "gpu0.compute"),
        "pipelined-gpu": profile(piped, "gpu0.compute"),
        "speedup": simple.makespan_seconds / piped.makespan_seconds,
    }


# ---------------------------------------------------------------------------
# Fig. 10: Pipelined-GPU (2 GPUs) vs CCF thread count
# ---------------------------------------------------------------------------


def fig10_ccf_threads(
    machine: MachineModel = PAPER_MACHINE,
    rows: int = PAPER_GRID[0],
    cols: int = PAPER_GRID[1],
    tile: tuple[int, int] = PAPER_TILE,
    ccf_threads: tuple[int, ...] = tuple(range(1, 17)),
    n_gpus: int = 2,
) -> list[tuple[int, float]]:
    """Run time vs number of CCF threads (paper: flat beyond ~2 threads)."""
    out = []
    for t in ccf_threads:
        res = simulate_pipelined_gpu(machine, rows, cols, n_gpus, ccf_threads=t, tile=tile)
        out.append((t, res.makespan_seconds))
    return out


# ---------------------------------------------------------------------------
# Fig. 11: Pipelined-CPU strong scaling
# ---------------------------------------------------------------------------


def fig11_cpu_scaling(
    machine: MachineModel = PAPER_MACHINE,
    rows: int = PAPER_GRID[0],
    cols: int = PAPER_GRID[1],
    tile: tuple[int, int] = PAPER_TILE,
    thread_counts: tuple[int, ...] = tuple(range(1, 17)),
) -> list[tuple[int, float, float]]:
    """(threads, seconds, speedup) for the Pipelined-CPU implementation.

    The speedup line is near-linear up to the physical core count and
    changes to a shallower slope through the hyper-threaded region.
    """
    results = []
    base = None
    for t in thread_counts:
        res = simulate_pipelined_cpu(machine, rows, cols, t, tile)
        if base is None:
            base = res.makespan_seconds
        results.append((t, res.makespan_seconds, base / res.makespan_seconds))
    return results


# ---------------------------------------------------------------------------
# Fig. 12: speedup surface (threads x tiles)
# ---------------------------------------------------------------------------


def fig12_speedup_surface(
    machine: MachineModel = PAPER_MACHINE,
    tile_counts: tuple[int, ...] = (128, 256, 384, 512, 640, 768, 896, 1024),
    thread_counts: tuple[int, ...] = tuple(range(1, 17)),
    tile: tuple[int, int] = PAPER_TILE,
) -> dict:
    """Pipelined-CPU speedup over (thread count, grid size).

    Grids are near-square with the requested tile total, matching the
    paper's 128-1024-tile sweep.  Returns ``{"surface": {(tiles, T): s}}``.
    """

    def near_square(n: int) -> tuple[int, int]:
        r = int(n**0.5)
        while n % r:
            r -= 1
        return r, n // r

    surface: dict[tuple[int, int], float] = {}
    times: dict[tuple[int, int], float] = {}
    for n in tile_counts:
        rows, cols = near_square(n)
        base = None
        for t in thread_counts:
            res = simulate_pipelined_cpu(machine, rows, cols, t, tile)
            if base is None:
                base = res.makespan_seconds
            times[(n, t)] = res.makespan_seconds
            surface[(n, t)] = base / res.makespan_seconds
    return {
        "tiles": list(tile_counts),
        "threads": list(thread_counts),
        "surface": surface,
        "times": times,
    }
