"""Paper-scale performance reproduction via discrete-event simulation.

This container has one CPU core and no GPU, so the paper's scaling results
(Table II, Figs. 5, 7, 9, 10, 11, 12) cannot be re-measured in wall-clock
time.  What *can* be reproduced faithfully is the thing those figures
actually demonstrate: the schedule each architecture induces over a fixed
set of hardware resources.

:mod:`repro.simulate.des` is a deterministic task-graph scheduler
(operations with dependencies, resources with capacities, FIFO dispatch).
:mod:`repro.simulate.schedules` builds each implementation's operation
graph -- the same topology the real implementations execute, driven by the
same traversal/bookkeeping logic.  :mod:`repro.simulate.costmodel` holds
machine models calibrated from the paper's own microbenchmarks, and
:mod:`repro.simulate.experiments` packages the paper's experiments.
"""

from repro.simulate.costmodel import LAPTOP, PAPER_MACHINE, MachineModel
from repro.simulate.des import Op, TaskGraphSimulator
from repro.simulate.experiments import (
    fig5_vm_cliff,
    fig7_fig9_profiles,
    fig10_ccf_threads,
    fig11_cpu_scaling,
    fig12_speedup_surface,
    table2_runtimes,
)

__all__ = [
    "TaskGraphSimulator",
    "Op",
    "MachineModel",
    "PAPER_MACHINE",
    "LAPTOP",
    "table2_runtimes",
    "fig5_vm_cliff",
    "fig7_fig9_profiles",
    "fig10_ccf_threads",
    "fig11_cpu_scaling",
    "fig12_speedup_surface",
]
