"""Per-implementation operation-graph builders for the DES.

Each ``simulate_*`` function builds the operation DAG the corresponding
real implementation executes -- same traversal order, same pair readiness
logic (a pair becomes computable when both transforms exist), same stage
topology -- and runs it through the task-graph scheduler.  The functions
share a replay of the sequential program (:func:`serial_program`) so the
graphs provably cover every tile and every pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.grid.neighbors import Pair, pairs_for_tile
from repro.grid.tile_grid import GridPosition, TileGrid
from repro.grid.traversal import Traversal, traverse
from repro.impls.mt_cpu import row_bands
from repro.impls.pipelined_gpu import column_partitions
from repro.simulate.costmodel import (
    FIJI_CHECK_PEAKS,
    FIJI_THREADS,
    JAVA_FACTOR,
    PAPER_TILE,
    MachineModel,
)
from repro.simulate.des import TaskGraphSimulator


@dataclass
class SimResult:
    """Outcome of one simulated run."""

    implementation: str
    makespan_seconds: float
    sim: TaskGraphSimulator
    params: dict = field(default_factory=dict)

    @property
    def minutes(self) -> float:
        return self.makespan_seconds / 60.0


def serial_program(
    rows: int, cols: int, traversal: Traversal = Traversal.CHAINED_DIAGONAL
) -> Iterator[tuple[str, object]]:
    """Replay the sequential implementation's program order.

    Yields ``("tile", pos)`` on first visit and ``("pair", pair)`` as soon
    as both members have been visited -- the readiness rule every
    implementation shares.
    """
    grid = TileGrid(rows, cols)
    visited: set[GridPosition] = set()
    done: set[Pair] = set()
    for pos in traverse(grid, traversal):
        visited.add(pos)
        yield ("tile", pos)
        for pair in pairs_for_tile(grid, pos.row, pos.col):
            if pair not in done and pair.first in visited and pair.second in visited:
                done.add(pair)
                yield ("pair", pair)


# ---------------------------------------------------------------------------
# CPU implementations
# ---------------------------------------------------------------------------


def simulate_simple_cpu(
    machine: MachineModel,
    rows: int,
    cols: int,
    tile: tuple[int, int] = PAPER_TILE,
) -> SimResult:
    """Sequential CPU run: one chain of ops on one core."""
    hw = tile[0] * tile[1]
    cpu = machine.cpu
    sim = TaskGraphSimulator()
    core = sim.resource("cpu", 1)
    prev = None
    for kind, _ in serial_program(rows, cols):
        if kind == "tile":
            prev = sim.op("read+fft", core,
                          cpu.read(hw) + cpu.decode(hw) + cpu.fft(hw),
                          deps=[prev] if prev else [])
        else:
            prev = sim.op("pair", core, cpu.pair_cpu(hw), deps=[prev] if prev else [])
    makespan = sim.run()
    return SimResult("simple-cpu", makespan, sim, {"rows": rows, "cols": cols})


def simulate_mt_cpu(
    machine: MachineModel,
    rows: int,
    cols: int,
    threads: int,
    tile: tuple[int, int] = PAPER_TILE,
) -> SimResult:
    """SPMD row bands: one serial chain per band, time-shared cores.

    Band boundary rows are read and transformed redundantly by the lower
    band (exactly as :class:`repro.impls.mt_cpu.MtCpu` does), which is why
    MT-CPU trails Pipelined-CPU at high thread counts in Table II.
    """
    hw = tile[0] * tile[1]
    cpu = machine.cpu
    slow = machine.thread_slowdown(threads)
    sim = TaskGraphSimulator()
    cores = sim.resource("cpu", threads)
    disk = sim.resource("disk", 1)
    for r0, r1 in row_bands(rows, threads):
        prev = None
        start = r0 - 1 if r0 > 0 else r0
        band_cols_prev: list = [None] * cols
        for r in range(start, r1):
            band_cols_cur: list = [None] * cols
            for c in range(cols):
                rd = sim.op("read", disk, cpu.read(hw), deps=[prev] if prev else [])
                prev = sim.op(
                    "fft", cores, (cpu.decode(hw) + cpu.fft(hw)) * slow, deps=[rd]
                )
                band_cols_cur[c] = prev
                if c > 0 and r >= r0:
                    prev = sim.op("pair-w", cores, cpu.pair_cpu(hw) * slow, deps=[prev])
                if band_cols_prev[c] is not None and r >= r0:
                    prev = sim.op("pair-n", cores, cpu.pair_cpu(hw) * slow, deps=[prev])
            band_cols_prev = band_cols_cur
    makespan = sim.run()
    return SimResult(
        "mt-cpu", makespan, sim, {"rows": rows, "cols": cols, "threads": threads}
    )


def simulate_pipelined_cpu(
    machine: MachineModel,
    rows: int,
    cols: int,
    threads: int,
    tile: tuple[int, int] = PAPER_TILE,
    traversal: Traversal = Traversal.CHAINED_DIAGONAL,
) -> SimResult:
    """3-stage CPU pipeline: reader chain feeding a compute worker pool."""
    hw = tile[0] * tile[1]
    cpu = machine.cpu
    slow = machine.thread_slowdown(threads)
    sim = TaskGraphSimulator()
    disk = sim.resource("disk", 1)
    pool = sim.resource("cpu", threads)
    fft_of: dict[GridPosition, object] = {}
    prev_read = None
    for kind, item in serial_program(rows, cols, traversal):
        if kind == "tile":
            rd = sim.op("read", disk, cpu.read(hw), deps=[prev_read] if prev_read else [])
            prev_read = rd
            fft_of[item] = sim.op(
                "fft", pool, (cpu.decode(hw) + cpu.fft(hw)) * slow, deps=[rd]
            )
        else:
            sim.op(
                "pair", pool, cpu.pair_cpu(hw) * slow,
                deps=[fft_of[item.first], fft_of[item.second]],
            )
    makespan = sim.run()
    return SimResult(
        "pipelined-cpu", makespan, sim,
        {"rows": rows, "cols": cols, "threads": threads},
    )


def simulate_fiji(
    machine: MachineModel,
    rows: int,
    cols: int,
    tile: tuple[int, int] = PAPER_TILE,
    threads: int = FIJI_THREADS,
    java_factor: float = JAVA_FACTOR,
) -> SimResult:
    """ImageJ/Fiji plugin architecture.

    Per pair: reload both tiles, pad to the next power of two of the
    combined extent (2048x2048 for the paper's tiles), transform both,
    correlate, inverse-transform, and CCF-check ``FIJI_CHECK_PEAKS``
    peaks.  ``java_factor`` is the JVM multiplier calibrated to the
    published >3.6 h (see EXPERIMENTS.md).
    """
    h, w = tile

    def pow2(n: int) -> int:
        m = 1
        while m < n:
            m *= 2
        return m

    hw_pad = pow2(h + h // 2) * pow2(w + w // 2)  # plugin pads pair extent
    hw = h * w
    cpu = machine.cpu
    sim = TaskGraphSimulator()
    pool = sim.resource("cpu", threads)
    disk = sim.resource("disk", 1)
    grid = TileGrid(rows, cols)
    from repro.grid.neighbors import grid_pairs

    slow = machine.thread_slowdown(min(threads, machine.logical_cores))
    per_pair_compute = java_factor * slow * (
        2 * cpu.decode(hw)
        + 2 * cpu.fft(hw_pad)
        + cpu.ncc(hw_pad)
        + cpu.fft(hw_pad)          # inverse transform
        + cpu.reduce_max(hw_pad)
        + FIJI_CHECK_PEAKS * cpu.ccf(hw) / 4.0  # ccf() costs ~1/4 of the 4-way check
    )
    prev_read = None
    for pair in grid_pairs(grid):
        rd = sim.op("read-2", disk, 2 * cpu.read(hw), deps=[prev_read] if prev_read else [])
        prev_read = rd
        sim.op("pair", pool, per_pair_compute, deps=[rd])
    makespan = sim.run()
    return SimResult(
        "imagej-fiji", makespan, sim,
        {"rows": rows, "cols": cols, "threads": threads},
    )


# ---------------------------------------------------------------------------
# GPU implementations
# ---------------------------------------------------------------------------


def simulate_simple_gpu(
    machine: MachineModel,
    rows: int,
    cols: int,
    tile: tuple[int, int] = PAPER_TILE,
) -> SimResult:
    """Synchronous single-stream GPU port: strict program-order chain.

    Every op depends on its predecessor (host blocks on each call), so the
    makespan is the plain sum -- and the trace shows the Fig. 7 gaps: the
    compute engine idles during reads, copies, CCFs, and the per-call
    synchronous overhead.
    """
    hw = tile[0] * tile[1]
    cpu, gpu = machine.cpu, machine.gpu
    transform_bytes = 16 * hw
    sim = TaskGraphSimulator()
    host = sim.resource("host", 1)
    h2d = sim.resource("gpu0.h2d", 1)
    compute = sim.resource("gpu0.compute", 1)
    d2h = sim.resource("gpu0.d2h", 1)
    prev = None

    def chain(name, res, dur):
        nonlocal prev
        prev = sim.op(name, res, dur, deps=[prev] if prev else [])
        return prev

    for kind, _ in serial_program(rows, cols):
        if kind == "tile":
            chain("read", host, cpu.read(hw) + cpu.decode(hw))
            chain("sync", host, gpu.sync_overhead)
            chain("h2d", h2d, gpu.h2d(transform_bytes))
            chain("sync", host, gpu.sync_overhead)
            chain("cufft-fwd", compute, gpu.fft(hw))
        else:
            chain("sync", host, gpu.sync_overhead)
            chain("ncc", compute, gpu.ncc(hw))
            chain("sync", host, gpu.sync_overhead)
            chain("cufft-inv", compute, gpu.fft(hw))
            chain("sync", host, gpu.sync_overhead)
            chain("reduce", compute, gpu.reduce_max(hw))
            chain("sync", host, gpu.sync_overhead)
            chain("d2h", d2h, gpu.d2h(16))
            chain("ccf", host, cpu.ccf(hw))
    makespan = sim.run()
    return SimResult("simple-gpu", makespan, sim, {"rows": rows, "cols": cols})


def simulate_pipelined_gpu(
    machine: MachineModel,
    rows: int,
    cols: int,
    n_gpus: int = 1,
    ccf_threads: int | None = None,
    tile: tuple[int, int] = PAPER_TILE,
    traversal: Traversal = Traversal.CHAINED_DIAGONAL,
    p2p: bool = False,
    p2p_bandwidth: float = 8.0e9,
    hyper_q: bool = False,
) -> SimResult:
    """The Fig. 8 pipeline: per-GPU engines + a shared CCF thread pool.

    Column partitions with ghost columns, one read chain per pipeline
    contending on the shared disk, fully asynchronous engines.

    ``p2p=True`` models the paper's future-work variant for machines with
    more GPUs: instead of redundantly reading and transforming its ghost
    column, each pipeline receives the neighbouring card's transforms over
    a peer-to-peer link (one shared PCIe-switch resource at
    ``p2p_bandwidth`` bytes/s).

    ``hyper_q=True`` models the Kepler GK110 upgrade path (Section VI):
    the hardware scheduler accepts work from multiple host threads, so the
    light NCC/reduce kernels execute on a second concurrent channel while
    cuFFT (which monopolizes registers) keeps its own -- the paper's note
    that the pipeline "can be changed easily to take advantage of
    Hyper-Q".
    """
    from repro.grid.neighbors import grid_pairs

    hw = tile[0] * tile[1]
    cpu, gpu = machine.cpu, machine.gpu
    transform_bytes = 16 * hw
    if ccf_threads is None:
        # Paper: "multiple threads, based on the number of available CPU
        # cores"; 5 pipeline threads per GPU occupy the rest.
        ccf_threads = max(1, machine.logical_cores - 5 * n_gpus)
    sim = TaskGraphSimulator()
    disk = sim.resource("disk", 1)
    ccf_pool = sim.resource("ccf", ccf_threads)
    grid = TileGrid(rows, cols)

    parts = column_partitions(cols, n_gpus)
    p2p_link = sim.resource("p2p", 1) if p2p and len(parts) > 1 else None
    for g in range(len(parts)):
        sim.resource(f"gpu{g}.h2d", 1)
        sim.resource(f"gpu{g}.compute", 1)
        sim.resource(f"gpu{g}.d2h", 1)
        if hyper_q:
            sim.resource(f"gpu{g}.compute2", 1)

    # Pass 1: owned-tile chains (read -> h2d -> fft) per pipeline.  With
    # p2p each partition owns exactly its columns; without it the ghost
    # column is duplicated into the higher partition (the paper's scheme).
    fft_by_gpu: list[dict[GridPosition, object]] = [dict() for _ in parts]
    for g, (c0, c1) in enumerate(parts):
        tile_c0 = c0 if (p2p or g == 0) else c0 - 1
        sub = TileGrid(grid.rows, c1 - tile_c0)
        prev_read = None
        for pos_local in traverse(sub, traversal):
            pos = GridPosition(pos_local.row, pos_local.col + tile_c0)
            rd = sim.op("read", disk, cpu.read(hw),
                        deps=[prev_read] if prev_read else [])
            prev_read = rd
            cp = sim.op("h2d", f"gpu{g}.h2d", gpu.h2d(transform_bytes), deps=[rd])
            ft = sim.op("cufft-fwd", f"gpu{g}.compute", gpu.fft(hw), deps=[cp])
            fft_by_gpu[g][pos] = ft

    # Pass 2 (p2p only): ghost transforms arrive over the peer link from
    # the owning card instead of being recomputed.
    if p2p_link is not None:
        for g, (c0, _c1) in enumerate(parts):
            if g == 0:
                continue
            for r in range(grid.rows):
                ghost = GridPosition(r, c0 - 1)
                src = fft_by_gpu[g - 1][ghost]
                fft_by_gpu[g][ghost] = sim.op(
                    "p2p-copy", "p2p",
                    transform_bytes / p2p_bandwidth, deps=[src],
                )

    # Pass 3: pair chains on the owning pipeline (west pairs owned by the
    # partition holding their second tile; north pairs are column-local).
    for g, (c0, c1) in enumerate(parts):
        local_fft = fft_by_gpu[g]
        for pair in grid_pairs(grid):
            if not (c0 <= pair.second.col < c1):
                continue
            if pair.first not in local_fft:
                continue
            kq = f"gpu{g}.compute2" if hyper_q else f"gpu{g}.compute"
            ncc = sim.op("ncc", kq, gpu.ncc(hw),
                         deps=[local_fft[pair.first], local_fft[pair.second]])
            inv = sim.op("cufft-inv", f"gpu{g}.compute", gpu.fft(hw), deps=[ncc])
            red = sim.op("reduce", kq, gpu.reduce_max(hw), deps=[inv])
            cpy = sim.op("d2h", f"gpu{g}.d2h", gpu.d2h(16), deps=[red])
            sim.op("ccf", ccf_pool, cpu.ccf(hw), deps=[cpy])
    makespan = sim.run()
    return SimResult(
        "pipelined-gpu", makespan, sim,
        {"rows": rows, "cols": cols, "gpus": n_gpus,
         "ccf_threads": ccf_threads, "p2p": p2p, "hyper_q": hyper_q},
    )


def simulate_pipelined_cpu_numa(
    machine: MachineModel,
    rows: int,
    cols: int,
    threads: int,
    sockets: int = 2,
    tile: tuple[int, int] = PAPER_TILE,
    traversal: Traversal = Traversal.CHAINED_DIAGONAL,
    socket_efficiency: float = 0.97,
) -> SimResult:
    """Per-socket pipelines (the paper's §IV.B future-work variant).

    ``threads`` are split evenly across ``sockets``; each socket's worker
    pool only contends with itself, so its multi-core efficiency exponent
    improves (``socket_efficiency`` vs the machine-wide
    ``core_efficiency``) at the price of ghost-column duplication between
    partitions -- the same trade the multi-GPU decomposition makes.
    """
    from repro.grid.neighbors import pairs_for_tile as _pft

    hw = tile[0] * tile[1]
    cpu = machine.cpu
    sockets = max(1, min(sockets, threads, cols))
    per_socket = max(1, threads // sockets)
    # Socket-local slowdown: a socket owns physical_cores/sockets cores.
    phys = max(1, machine.physical_cores // sockets)
    logical = max(1, machine.logical_cores // sockets)
    if per_socket <= phys:
        eff = float(per_socket) ** socket_efficiency
    else:
        eff = phys**socket_efficiency + machine.ht_yield * (
            min(per_socket, logical) - phys
        )
    slow = per_socket / eff

    sim = TaskGraphSimulator()
    disk = sim.resource("disk", 1)
    grid = TileGrid(rows, cols)
    parts = column_partitions(cols, sockets)
    for k, (c0, c1) in enumerate(parts):
        pool = sim.resource(f"cpu{k}", per_socket)
        tile_c0 = c0 - 1 if k > 0 else c0
        sub = TileGrid(rows, c1 - tile_c0)
        fft_of: dict[GridPosition, object] = {}
        visited: set[GridPosition] = set()
        prev_read = None
        for pos_local in traverse(sub, traversal):
            pos = GridPosition(pos_local.row, pos_local.col + tile_c0)
            rd = sim.op("read", disk, cpu.read(hw),
                        deps=[prev_read] if prev_read else [])
            prev_read = rd
            fft_of[pos] = sim.op(
                "fft", pool, (cpu.decode(hw) + cpu.fft(hw)) * slow, deps=[rd]
            )
            visited.add(pos)
            for pair in _pft(grid, pos.row, pos.col):
                if not (c0 <= pair.second.col < c1):
                    continue
                if pair.first.col < tile_c0:
                    continue
                if pair.first not in visited or pair.second not in visited:
                    continue
                sim.op("pair", pool, cpu.pair_cpu(hw) * slow,
                       deps=[fft_of[pair.first], fft_of[pair.second]])
    makespan = sim.run()
    return SimResult(
        "pipelined-cpu-numa", makespan, sim,
        {"rows": rows, "cols": cols, "threads": threads, "sockets": sockets},
    )
