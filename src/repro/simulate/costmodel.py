"""Machine models for the performance simulation.

Combines the per-operation device/host costs of :mod:`repro.gpu.costs`
with whole-machine structure: core counts, hyper-threading yield, disk,
RAM, and GPU count.  Two machines are modeled, both from the paper:

- :data:`PAPER_MACHINE`: 2x Intel Xeon E-5620 (8 physical cores, 16
  hardware threads), 48 GB RAM, 2x Tesla C2070, Ubuntu-era SATA storage;
- :data:`LAPTOP`: the Section VI validation laptop -- i7-950 (4 cores),
  12 GB RAM, GTX 560M.

Hyper-threading model: ``T`` software threads achieve an *effective
parallelism* of ``T`` up to the physical core count and gain
``ht_yield`` of a core per extra thread up to the logical core count;
this produces the two-slope speedup line of Fig. 11.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.costs import (
    GTX_560M,
    I7_950,
    TESLA_C2070,
    XEON_E5620,
    CpuCostModel,
    GpuCostModel,
)


@dataclass(frozen=True)
class MachineModel:
    name: str
    physical_cores: int
    logical_cores: int
    ht_yield: float
    disk_bandwidth: float       # bytes/s effective read (warm page cache)
    ram_bytes: float
    n_gpus: int
    cpu: CpuCostModel
    gpu: GpuCostModel
    #: Cold-device bandwidth servicing page faults (Fig. 5 thrashing regime).
    page_fault_bandwidth: float = 100e6
    #: Sub-linearity of multi-core scaling below the physical core count
    #: (shared memory bandwidth / LLC on the dual-socket Xeon): ``T``
    #: threads deliver ``T**core_efficiency`` core-equivalents.  Calibrated
    #: against the paper's own speedups (MT-CPU 6.6x and Pipelined-CPU 7.5x
    #: at 16 threads -- both below the physical core count of 8, so the
    #: machine saturates before HT is reached).
    core_efficiency: float = 0.95

    def effective_parallelism(self, threads: int) -> float:
        """Throughput (in core-equivalents) of ``threads`` busy threads."""
        if threads < 1:
            raise ValueError("need at least one thread")
        if threads <= self.physical_cores:
            return float(threads) ** self.core_efficiency
        extra = min(threads, self.logical_cores) - self.physical_cores
        return (
            self.physical_cores**self.core_efficiency + self.ht_yield * extra
        )

    def thread_slowdown(self, threads: int) -> float:
        """Per-op duration multiplier when ``threads`` share the CPU.

        With ``threads <= physical_cores`` each thread runs at full speed
        (multiplier 1).  Beyond that, threads time-share: ``T`` threads
        delivering ``eff(T)`` core-equivalents make each op
        ``T / eff(T)``x slower.
        """
        return threads / self.effective_parallelism(threads)


PAPER_MACHINE = MachineModel(
    name="2x Xeon E-5620 + 2x Tesla C2070",
    physical_cores=8,
    logical_cores=16,
    ht_yield=0.05,
    disk_bandwidth=1.5e9,
    ram_bytes=48 * 1024**3,
    n_gpus=2,
    cpu=XEON_E5620,
    gpu=TESLA_C2070,
)

#: The Fig. 5 variant of the evaluation machine ("with 24 GB of RAM only").
PAPER_MACHINE_24GB = MachineModel(
    name="2x Xeon E-5620, 24 GB",
    physical_cores=8,
    logical_cores=16,
    ht_yield=0.05,
    disk_bandwidth=1.5e9,
    ram_bytes=24 * 1024**3,
    n_gpus=0,
    cpu=XEON_E5620,
    gpu=TESLA_C2070,
)

LAPTOP = MachineModel(
    name="i7-950 + GTX 560M (laptop)",
    physical_cores=4,
    logical_cores=8,
    ht_yield=0.05,
    disk_bandwidth=1.0e9,
    ram_bytes=12 * 1024**3,
    n_gpus=1,
    cpu=I7_950,
    gpu=GTX_560M,
)

#: The paper's reference workload: 42x59 grid of 1392x1040 16-bit tiles.
PAPER_GRID = (42, 59)
PAPER_TILE = (1040, 1392)

#: ImageJ/Fiji plugin architecture constants for the Table II baseline row:
#: the plugin pads each pair to the next power of two of the combined extent
#: (2048x2048 for the paper's tiles), recomputes both forward transforms per
#: pair, checks 5 peaks, and runs on 5-6 threads.  ``JAVA_FACTOR`` is the
#: JVM/copy-overhead multiplier calibrated so the simulated plugin lands at
#: the paper's ~3.6 h on the 42x59 grid.
FIJI_THREADS = 6
FIJI_CHECK_PEAKS = 5
JAVA_FACTOR = 11.0
