"""Service resilience: quarantine, circuit breaking, load shedding, disk budget.

The service layer (PR 7) made the stitcher a standing multi-tenant
server, but its failure handling was still per-incident: a worker death
meant an unconditional respawn and a requeue, repeated until the job's
retry budget ran out.  That policy is correct for *transient* deaths
(a stray OOM kill, a test's SIGKILL) and catastrophic for *systematic*
ones -- a job whose input deterministically crashes the worker burns a
fresh process per attempt, and a burst of deaths turns the pool into a
fork bomb with a queue attached.  Wang et al.'s hybrid pathology
pipeline (PAPERS.md) frames the fix: a shared data-processing service
survives on *isolation of bad inputs* and *graceful degradation under
load*, not on per-request heroics.

Four cooperating mechanisms, all deterministic under injected clocks:

- :class:`PoisonTracker` -- per-job worker-death attribution.  After
  ``quarantine_threshold`` deaths attributable to the same job, the job
  is **quarantined**: a terminal state with a structured post-mortem
  (attempts, per-attempt death signals, the last journal milestone the
  job reached) instead of another respawn/requeue cycle.
- :class:`CircuitBreaker` -- a sliding-window breaker over worker
  deaths.  Too many deaths per unit time trips the pool OPEN (no
  dispatch); after a cooldown it goes HALF_OPEN and admits **one canary
  job at a time**; a canary surviving its run closes the breaker, a
  canary death re-opens it with doubled (capped) cooldown.  Respawn
  pacing uses capped exponential backoff with deterministic jitter so
  a crash loop cannot hot-spin fork().
- :class:`LoadShedder` -- brownout policy over queue depth, service-time
  EWMA and worker availability.  Crossing the soft threshold reports
  ``degraded`` and sheds the lowest-priority submissions with an honest
  ``Retry-After``; crossing the hard threshold reports ``browned_out``
  and sheds more aggressively, optionally *degrading* admitted jobs
  (auto-enable coarse registration, skip compose output) instead of
  rejecting them outright.
- :class:`SpoolBudget` -- a byte budget over the spool/journal/output
  tree.  Admissions that would exceed it are rejected (429,
  ``spool_budget``) before they can wedge a worker on a full disk;
  mid-run ``ENOSPC`` surfaces as a clean
  :class:`~repro.recovery.journal.JournalWriteError` job failure.

Everything is observable: ``service.breaker_state`` /
``service.quarantined_jobs`` / ``service.shed_requests`` /
``service.spool_bytes`` metrics, breaker and quarantine transitions as
zero-width tracer spans on the ``service`` track, and ``/healthz``
reporting ``ok | degraded | browned_out`` with reasons.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from random import Random

from repro.service.queue import AdmissionRejected

__all__ = [
    "BreakerConfig",
    "BreakerState",
    "BrownoutPolicy",
    "CircuitBreaker",
    "DeathEvent",
    "HealthReport",
    "LoadShedder",
    "PoisonTracker",
    "ResilienceConfig",
    "SpoolBudget",
    "SpoolBudgetExceeded",
]


# -- circuit breaker ---------------------------------------------------------


class BreakerState(str, Enum):
    CLOSED = "closed"        # normal dispatch
    OPEN = "open"            # no dispatch until the cooldown elapses
    HALF_OPEN = "half_open"  # one canary job at a time

    @property
    def gauge_value(self) -> int:
        """Numeric encoding for the ``service.breaker_state`` gauge."""
        return {"closed": 0, "half_open": 1, "open": 2}[self.value]


@dataclass(frozen=True)
class BreakerConfig:
    """Crash-loop breaker thresholds.

    ``death_threshold`` deaths within ``window_seconds`` trip the
    breaker OPEN.  ``cooldown_seconds`` is the first OPEN interval;
    every canary death doubles it up to ``max_cooldown_seconds``.
    ``respawn_base``/``respawn_cap`` bound the per-slot exponential
    respawn backoff; ``jitter`` is the randomized fraction of each
    backoff (0 = fully deterministic, 0.5 = up to half the delay), drawn
    from a ``seed``-ed stream so tests replay exactly.
    """

    death_threshold: int = 3
    window_seconds: float = 30.0
    cooldown_seconds: float = 1.0
    max_cooldown_seconds: float = 30.0
    respawn_base: float = 0.05
    respawn_cap: float = 5.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.death_threshold < 1:
            raise ValueError(
                f"death_threshold must be >= 1, got {self.death_threshold}"
            )
        if self.window_seconds <= 0:
            raise ValueError(
                f"window_seconds must be > 0, got {self.window_seconds}"
            )
        if self.cooldown_seconds < 0 or self.max_cooldown_seconds < 0:
            raise ValueError("cooldowns must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")


class CircuitBreaker:
    """Sliding-window crash-loop breaker with half-open canary probing.

    Thread-safe; driven by the pool's dispatcher threads.  The state
    machine::

        CLOSED --(>= threshold deaths in window)--> OPEN
        OPEN   --(cooldown elapsed)--------------> HALF_OPEN
        HALF_OPEN --(canary survives)------------> CLOSED
        HALF_OPEN --(canary's worker dies)-------> OPEN (cooldown doubled)

    ``acquire()`` is the dispatch gate: it returns ``"normal"`` when
    closed, ``"canary"`` for exactly one caller when half-open, and
    ``None`` (caller should wait briefly and retry) otherwise.
    """

    def __init__(self, config: BreakerConfig | None = None,
                 clock=time.monotonic, metrics=None, tracer=None) -> None:
        self.config = config or BreakerConfig()
        self.clock = clock
        self.metrics = metrics
        self.tracer = tracer
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._deaths: deque[float] = deque()
        self._opened_at: float | None = None
        self._cooldown = self.config.cooldown_seconds
        self._canary_out = False
        self._rng = Random(self.config.seed)
        self.trips = 0
        self.canary_successes = 0
        self.canary_failures = 0
        self._publish(self._state)

    # -- state ---------------------------------------------------------------

    @property
    def state(self) -> BreakerState:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        """OPEN -> HALF_OPEN once the cooldown elapses (lock held)."""
        if (
            self._state is BreakerState.OPEN
            and self._opened_at is not None
            and self.clock() - self._opened_at >= self._cooldown
        ):
            self._transition(BreakerState.HALF_OPEN)

    def _transition(self, to: BreakerState) -> None:
        if to is self._state:
            return
        self._state = to
        self._publish(to)

    def _publish(self, state: BreakerState) -> None:
        if self.metrics is not None:
            self.metrics.gauge("service.breaker_state").set(state.gauge_value)
        if self.tracer is not None:
            t = self.tracer.now()
            self.tracer.record_span(
                f"breaker:{state.value}", "service", t, t,
                args={"state": state.value},
            )

    # -- events --------------------------------------------------------------

    def record_death(self) -> None:
        """One worker death; may trip the breaker."""
        with self._lock:
            now = self.clock()
            self._deaths.append(now)
            horizon = now - self.config.window_seconds
            while self._deaths and self._deaths[0] < horizon:
                self._deaths.popleft()
            if self._state is BreakerState.HALF_OPEN and self._canary_out:
                # The canary's worker died: the fault is still live.
                self._canary_out = False
                self.canary_failures += 1
                self._cooldown = min(
                    self.config.max_cooldown_seconds, self._cooldown * 2
                )
                self._opened_at = now
                self._transition(BreakerState.OPEN)
                self._count("service.breaker_reopened")
                return
            if (
                self._state is BreakerState.CLOSED
                and len(self._deaths) >= self.config.death_threshold
            ):
                self.trips += 1
                self._opened_at = now
                self._cooldown = self.config.cooldown_seconds
                self._transition(BreakerState.OPEN)
                self._count("service.breaker_trips")

    def record_success(self) -> None:
        """A job completed without killing its worker."""
        with self._lock:
            if self._state is BreakerState.HALF_OPEN and self._canary_out:
                self._canary_out = False
                self.canary_successes += 1
                self._cooldown = self.config.cooldown_seconds
                self._deaths.clear()
                self._transition(BreakerState.CLOSED)
                self._count("service.breaker_closed")

    # -- dispatch gate -------------------------------------------------------

    def acquire(self) -> str | None:
        """Dispatch permission: ``"normal"``, ``"canary"`` or ``None``."""
        with self._lock:
            self._maybe_half_open()
            if self._state is BreakerState.CLOSED:
                return "normal"
            if self._state is BreakerState.HALF_OPEN and not self._canary_out:
                self._canary_out = True
                return "canary"
            return None

    def release(self, permit: str | None, died: bool) -> None:
        """Settle a dispatch permit.

        Death accounting happens in :meth:`record_death` (the pool calls
        it from the death path with the job in hand); here the canary
        slot is freed and a surviving canary closes the breaker.
        """
        if permit != "canary":
            return
        if died:
            return  # record_death already handled the reopen
        self.record_success()

    def abandon(self, permit: str | None) -> None:
        """Return an unused permit (queue was empty)."""
        if permit != "canary":
            return
        with self._lock:
            self._canary_out = False

    # -- respawn pacing ------------------------------------------------------

    def respawn_backoff(self, consecutive_deaths: int) -> float:
        """Seconds to wait before respawning after the Nth consecutive
        death on one slot: capped exponential plus deterministic jitter.

        The jittered fraction decorrelates slots so a pool-wide crash
        does not respawn every worker on the same tick.
        """
        n = max(1, int(consecutive_deaths))
        base = min(
            self.config.respawn_cap,
            self.config.respawn_base * (2 ** (n - 1)),
        )
        if self.config.jitter <= 0:
            return base
        with self._lock:
            frac = self._rng.random()
        return base * (1.0 - self.config.jitter + self.config.jitter * frac)

    def snapshot(self) -> dict:
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state.value,
                "trips": self.trips,
                "canary_successes": self.canary_successes,
                "canary_failures": self.canary_failures,
                "deaths_in_window": len(self._deaths),
                "cooldown_seconds": self._cooldown,
            }

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()


# -- poison-job quarantine ---------------------------------------------------


@dataclass(frozen=True)
class DeathEvent:
    """One worker death attributed to a job attempt."""

    attempt: int
    signal: str          # "SIGKILL", "SIGSEGV", "exit(1)", "unknown"
    cause: str           # "worker_death" | "deadline"
    at: float            # pool clock timestamp

    def to_dict(self) -> dict:
        return {
            "attempt": self.attempt, "signal": self.signal,
            "cause": self.cause, "at": self.at,
        }


def describe_exit(exitcode: int | None) -> str:
    """Human name for a worker's exit code (negative = killed by signal)."""
    if exitcode is None:
        return "unknown"
    if exitcode < 0:
        try:
            import signal as _signal

            return _signal.Signals(-exitcode).name
        except ValueError:
            return f"signal {-exitcode}"
    return f"exit({exitcode})"


class PoisonTracker:
    """Per-job worker-death attribution and quarantine decision.

    A job whose attempts have killed ``threshold`` workers is *poison*:
    retrying it buys nothing and costs a warm worker (plus its plan
    cache) every time.  The tracker remembers each death per job id and
    answers the only question the pool needs: "has this job earned
    quarantine?"
    """

    def __init__(self, threshold: int = 3, clock=time.monotonic) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.clock = clock
        self._lock = threading.Lock()
        self._deaths: dict[str, list[DeathEvent]] = {}

    def record_death(self, job_id: str, attempt: int, signal: str,
                     cause: str = "worker_death") -> bool:
        """Attribute one death; returns True when the job is now poison."""
        with self._lock:
            events = self._deaths.setdefault(job_id, [])
            events.append(DeathEvent(attempt, signal, cause, self.clock()))
            return len(events) >= self.threshold

    def deaths(self, job_id: str) -> list[DeathEvent]:
        with self._lock:
            return list(self._deaths.get(job_id, ()))

    def forget(self, job_id: str) -> None:
        """Drop attribution (job reached a terminal state)."""
        with self._lock:
            self._deaths.pop(job_id, None)

    def post_mortem(self, job_id: str, journal_path=None) -> dict:
        """Structured quarantine report: what killed how many workers,
        and how far the job durably got before each death."""
        events = self.deaths(job_id)
        report = {
            "job_id": job_id,
            "worker_deaths": len(events),
            "threshold": self.threshold,
            "death_signals": [e.signal for e in events],
            "deaths": [e.to_dict() for e in events],
            "last_milestone": None,
            "journaled_pairs": 0,
        }
        if journal_path is not None:
            from repro.recovery.journal import load_journal

            state = load_journal(journal_path)
            if state.milestones:
                report["last_milestone"] = next(
                    reversed(state.milestones)
                )
            report["journaled_pairs"] = len(state.pairs)
        return report


# -- load shedding / brownout ------------------------------------------------


@dataclass(frozen=True)
class BrownoutPolicy:
    """Declared overload behaviour.

    ``mode``
        ``"off"`` -- never shed (report-only health);
        ``"shed"`` -- reject low-priority submissions when overloaded;
        ``"degrade"`` -- shed *and* degrade admitted jobs while browned
        out (force coarse registration, drop compose output) so the pool
        spends less per job instead of queueing more debt.
    ``degraded_depth`` / ``brownout_depth``
        queue-depth fractions (of ``max_depth``) that mark the service
        degraded / browned out.
    ``shed_priority_degraded`` / ``shed_priority_brownout``
        submissions with priority *strictly below* these floors are shed
        in the respective state -- lowest-priority tenants go first.
    ``ewma_high``
        per-job EWMA service seconds that alone marks the service
        degraded (None = ignore service time).
    ``degraded_compose_budget``
        in ``degrade`` mode, admitted jobs in the *degraded* state keep
        their compose output but run it out-of-core under this byte
        budget -- a cheap middle tier between full service and the
        browned-out ``skip_compose``.
    """

    mode: str = "shed"
    degraded_depth: float = 0.6
    brownout_depth: float = 0.85
    shed_priority_degraded: int = 2
    shed_priority_brownout: int = 5
    ewma_high: float | None = None
    degraded_compose_budget: int = 64 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.mode not in ("off", "shed", "degrade"):
            raise ValueError(
                f"brownout mode must be off/shed/degrade, got {self.mode!r}"
            )
        if not 0.0 < self.degraded_depth <= self.brownout_depth <= 1.0:
            raise ValueError(
                "need 0 < degraded_depth <= brownout_depth <= 1, got "
                f"{self.degraded_depth}/{self.brownout_depth}"
            )
        if not 0 <= self.shed_priority_degraded <= self.shed_priority_brownout <= 10:
            raise ValueError("shed priority floors must satisfy "
                             "0 <= degraded <= brownout <= 10")
        if self.degraded_compose_budget < 1:
            raise ValueError(
                f"degraded_compose_budget must be positive, got "
                f"{self.degraded_compose_budget}"
            )

    @classmethod
    def parse(cls, spec: str) -> "BrownoutPolicy":
        """Parse ``MODE[:key=value,...]`` (e.g. ``degrade:depth=0.7``)."""
        mode, _, rest = spec.partition(":")
        kwargs: dict = {"mode": mode or "shed"}
        for item in rest.split(","):
            item = item.strip()
            if not item:
                continue
            key, eq, value = item.partition("=")
            if not eq:
                raise ValueError(f"expected key=value in brownout spec: {item!r}")
            if key == "depth":
                kwargs["brownout_depth"] = float(value)
            elif key == "degraded-depth":
                kwargs["degraded_depth"] = float(value)
            elif key == "shed-priority":
                kwargs["shed_priority_brownout"] = int(value)
            elif key == "ewma-high":
                kwargs["ewma_high"] = float(value)
            elif key == "compose-budget":
                kwargs["degraded_compose_budget"] = int(value)
            else:
                raise ValueError(f"unknown brownout key {key!r}")
        return cls(**kwargs)


@dataclass(frozen=True)
class HealthReport:
    """One assessment of service health: status plus the reasons."""

    status: str                      # "ok" | "degraded" | "browned_out"
    reasons: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict:
        return {"status": self.status, "reasons": list(self.reasons)}


class LoadShedder:
    """Brownout assessment + shed decisions over live service signals."""

    def __init__(self, policy: BrownoutPolicy | None = None,
                 metrics=None) -> None:
        self.policy = policy or BrownoutPolicy(mode="off")
        self.metrics = metrics
        self.shed_requests = 0
        self._lock = threading.Lock()

    def assess(self, *, depth: int, max_depth: int,
               workers_alive: int, workers_total: int,
               service_ewma: float | None = None,
               breaker_state: BreakerState = BreakerState.CLOSED,
               ) -> HealthReport:
        """Classify current load into ok / degraded / browned_out."""
        reasons: list[str] = []
        browned = False
        frac = depth / max_depth if max_depth else 0.0
        if frac >= self.policy.brownout_depth:
            reasons.append(
                f"queue {depth}/{max_depth} >= brownout threshold "
                f"{self.policy.brownout_depth:.0%}"
            )
            browned = True
        elif frac >= self.policy.degraded_depth:
            reasons.append(
                f"queue {depth}/{max_depth} >= degraded threshold "
                f"{self.policy.degraded_depth:.0%}"
            )
        if workers_total and workers_alive == 0:
            reasons.append("no live workers")
            browned = True
        elif workers_total and workers_alive < workers_total:
            reasons.append(
                f"{workers_total - workers_alive}/{workers_total} "
                f"workers down"
            )
        if breaker_state is BreakerState.OPEN:
            reasons.append("crash-loop breaker open")
            browned = True
        elif breaker_state is BreakerState.HALF_OPEN:
            reasons.append("crash-loop breaker half-open (canary probing)")
        if (
            self.policy.ewma_high is not None
            and service_ewma is not None
            and service_ewma >= self.policy.ewma_high
        ):
            reasons.append(
                f"service time EWMA {service_ewma:.1f}s >= "
                f"{self.policy.ewma_high:.1f}s"
            )
        if not reasons:
            return HealthReport("ok")
        return HealthReport(
            "browned_out" if browned else "degraded", tuple(reasons)
        )

    def shed_floor(self, report: HealthReport) -> int | None:
        """Priority floor below which submissions are shed, or None."""
        if self.policy.mode == "off" or report.ok:
            return None
        if report.status == "browned_out":
            return self.policy.shed_priority_brownout
        return self.policy.shed_priority_degraded

    def check_admission(self, priority: int, report: HealthReport,
                        retry_after: float) -> None:
        """Raise :class:`AdmissionRejected` when this submission sheds."""
        floor = self.shed_floor(report)
        if floor is None or priority >= floor:
            return
        with self._lock:
            self.shed_requests += 1
        if self.metrics is not None:
            self.metrics.counter("service.shed_requests").inc()
        raise AdmissionRejected(
            "shed_load",
            retry_after,
            f"service is {report.status} "
            f"({'; '.join(report.reasons)}); shedding priority < {floor}",
        )

    def degrade_options(self, report: HealthReport) -> list[str] | None:
        """Degradations to apply to an admitted job, or None.

        Only the ``degrade`` mode touches jobs, in two tiers.  Browned
        out: coarse registration (4x less FFT work at the default 0.5x
        scale) is forced on and compose output is skipped.  Merely
        degraded: the job keeps its output but the compose stage runs
        out-of-core under ``degraded_compose_budget`` bytes -- same
        pixels (the streaming path is bit-identical), just a capped
        memory footprint per worker.  All reversible by resubmitting
        after recovery.
        """
        if self.policy.mode != "degrade" or report.ok:
            return None
        if report.status == "browned_out":
            return ["coarse", "skip_compose"]
        return [f"compose_budget:{self.policy.degraded_compose_budget}"]


# -- spool disk budget -------------------------------------------------------


class SpoolBudgetExceeded(AdmissionRejected):
    """Admission would push the spool past its byte budget."""

    def __init__(self, used: int, budget: int, estimate: int,
                 retry_after: float = 30.0):
        super().__init__(
            "spool_budget",
            retry_after,
            f"spool holds {used} bytes of a {budget}-byte budget; "
            f"admitting ~{estimate} more would exceed it",
        )
        self.used = used
        self.budget = budget


class SpoolBudget:
    """Byte budget over the spool tree (journals, positions, outputs).

    ``usage()`` walks the spool directory, cached for ``ttl`` seconds so
    a submission burst does not turn into a stat() storm; the walk is
    refreshed on demand after job completions.  ``admit()`` rejects a
    submission whose estimated footprint would exceed the budget --
    catching disk exhaustion at the front door instead of as a torn
    journal mid-run.
    """

    def __init__(self, spool_dir: str | Path, max_bytes: int,
                 per_job_estimate: int = 1 << 20, ttl: float = 1.0,
                 clock=time.monotonic, metrics=None) -> None:
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.spool_dir = Path(spool_dir)
        self.max_bytes = int(max_bytes)
        self.per_job_estimate = int(per_job_estimate)
        self.ttl = ttl
        self.clock = clock
        self.metrics = metrics
        self._lock = threading.Lock()
        self._cached: int | None = None
        self._cached_at: float | None = None

    def refresh(self) -> int:
        """Walk the spool and cache the byte total."""
        total = 0
        if self.spool_dir.exists():
            for root, _dirs, files in os.walk(self.spool_dir):
                for name in files:
                    try:
                        total += os.path.getsize(os.path.join(root, name))
                    except OSError:
                        continue  # racing a delete
        with self._lock:
            self._cached = total
            self._cached_at = self.clock()
        if self.metrics is not None:
            self.metrics.gauge("service.spool_bytes").set(total)
        return total

    def usage(self) -> int:
        with self._lock:
            fresh = (
                self._cached is not None
                and self._cached_at is not None
                and self.clock() - self._cached_at < self.ttl
            )
            if fresh:
                return self._cached  # type: ignore[return-value]
        return self.refresh()

    def admit(self, estimate: int | None = None) -> None:
        """Raise :class:`SpoolBudgetExceeded` when the submission won't fit."""
        est = self.per_job_estimate if estimate is None else int(estimate)
        used = self.usage()
        if used + est > self.max_bytes:
            # Re-walk before rejecting: the cache may be stale just after
            # a cleanup, and a false 429 on a fresh disk is worse than
            # one extra directory walk on the rejection path.
            used = self.refresh()
            if used + est > self.max_bytes:
                if self.metrics is not None:
                    self.metrics.counter(
                        "service.spool_budget_rejected").inc()
                raise SpoolBudgetExceeded(used, self.max_bytes, est)

    def snapshot(self) -> dict:
        return {
            "spool_bytes": self.usage(),
            "budget_bytes": self.max_bytes,
            "per_job_estimate": self.per_job_estimate,
        }


# -- configuration facade ----------------------------------------------------


@dataclass(frozen=True)
class ResilienceConfig:
    """Everything ``repro serve`` can tune, in one picklable bundle."""

    quarantine_threshold: int = 3
    breaker: BreakerConfig = field(default_factory=BreakerConfig)
    brownout: BrownoutPolicy = field(
        default_factory=lambda: BrownoutPolicy(mode="off")
    )
    #: Spool byte budget; None disables the guard.
    spool_budget_bytes: int | None = None
    spool_per_job_estimate: int = 1 << 20
