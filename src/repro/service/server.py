"""Asyncio HTTP/JSON front end over the queue and the worker pool.

The protocol is deliberately minimal -- stdlib-only HTTP/1.1 with JSON
bodies, one request per connection -- because the interesting parts live
below it (admission control, durability, supervision).  Endpoints:

========================  =====================================================
``POST /jobs``            submit a job spec; 202 + record, or 429 +
                          ``Retry-After`` on backpressure
``GET /jobs``             list job summaries (``?tenant=`` filter)
``GET /jobs/<id>``        one job's full record
``POST /jobs/<id>/cancel``cancel a queued or running job
``GET /jobs/<id>/result`` solved positions + run summary (409 until done)
``GET /metrics``          Prometheus-style text exposition
``GET /metrics.json``     the raw :class:`MetricsRegistry` snapshot
``GET /healthz``          liveness: workers, queue depth, job-state counts
========================  =====================================================

:class:`StitchService` owns the job table and composes the pieces; it is
equally usable embedded (the e2e tests drive it in-process) or behind
``python -m repro serve``.
"""

from __future__ import annotations

import asyncio
import json
import re
import threading
import time
from pathlib import Path

from repro.observe.metrics import MetricsRegistry
from repro.observe.tracer import Tracer
from repro.recovery.watchdog import WatchdogConfig
from repro.service.jobs import JobRecord, JobSpec, JobState
from repro.service.pool import DEFAULT_WATCHDOG, WorkerPool
from repro.service.queue import AdmissionRejected, JobQueue
from repro.service.resilience import (
    HealthReport,
    LoadShedder,
    ResilienceConfig,
    SpoolBudget,
)

_JOB_PATH = re.compile(r"^/jobs/(?P<id>[a-f0-9]{12})(?P<rest>/result|/cancel)?$")

#: Largest request body the server will read (a job spec is ~1 KB).
MAX_BODY_BYTES = 64 * 1024


class ServiceHTTPError(Exception):
    def __init__(self, status: int, payload: dict,
                 headers: dict | None = None):
        super().__init__(payload.get("error", f"HTTP {status}"))
        self.status = status
        self.payload = payload
        self.headers = headers or {}


class StitchService:
    """The service: job table + queue + pool + registry + HTTP surface.

    ``dataset_root`` (optional) confines job dataset paths to one
    directory tree -- submissions naming paths outside it are rejected,
    so a network client cannot point the stitcher at arbitrary files.
    """

    def __init__(
        self,
        spool_dir: str | Path,
        workers: int = 2,
        dataset_root: str | Path | None = None,
        max_depth: int = 64,
        per_tenant_limit: int = 16,
        watchdog: WatchdogConfig = DEFAULT_WATCHDOG,
        default_retry_budget: int | None = None,
        metrics: MetricsRegistry | None = None,
        clock=time.monotonic,
        resilience: ResilienceConfig | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.spool_dir = Path(spool_dir)
        self.dataset_root = (
            Path(dataset_root).resolve() if dataset_root is not None else None
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(enabled=True)
        self.default_retry_budget = default_retry_budget
        self.clock = clock
        self.resilience = resilience or ResilienceConfig()
        self.queue = JobQueue(
            max_depth=max_depth,
            per_tenant_limit=per_tenant_limit,
            workers=workers,
            clock=clock,
            metrics=self.metrics,
        )
        self.pool = WorkerPool(
            self.queue,
            self.spool_dir,
            workers=workers,
            metrics=self.metrics,
            watchdog=watchdog,
            resolve_positions=self._resolve_positions,
            on_transition=self._on_transition,
            clock=clock,
            resilience=self.resilience,
            tracer=self.tracer,
        )
        self.shedder = LoadShedder(self.resilience.brownout,
                                   metrics=self.metrics)
        self.spool_budget = (
            SpoolBudget(
                self.spool_dir,
                self.resilience.spool_budget_bytes,
                per_job_estimate=self.resilience.spool_per_job_estimate,
                clock=clock,
                metrics=self.metrics,
            )
            if self.resilience.spool_budget_bytes is not None
            else None
        )
        self.jobs: dict[str, JobRecord] = {}
        self._lock = threading.Lock()
        self._transitions = threading.Condition(self._lock)
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._http_thread: threading.Thread | None = None
        self.address: tuple[str, int] | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "StitchService":
        """Start the worker pool (HTTP is separate; see start_http)."""
        self.pool.start()
        return self

    def stop(self) -> None:
        self.stop_http()
        self.pool.stop()

    def start_http(self, host: str = "127.0.0.1",
                   port: int = 0) -> tuple[str, int]:
        """Serve HTTP on a daemon thread; returns the bound address.

        ``port=0`` binds an ephemeral port -- what the tests and the CI
        smoke job use to avoid collisions.
        """
        if self._http_thread is not None:
            raise RuntimeError("HTTP server already running")
        started = threading.Event()
        failure: list[BaseException] = []

        def runner() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                server = loop.run_until_complete(
                    asyncio.start_server(self._handle_connection, host, port)
                )
            except BaseException as exc:  # pragma: no cover - bind failure
                failure.append(exc)
                started.set()
                return
            self._server = server
            sock = server.sockets[0].getsockname()
            self.address = (sock[0], sock[1])
            started.set()
            try:
                loop.run_forever()
            finally:
                server.close()
                loop.run_until_complete(server.wait_closed())
                loop.close()

        self._http_thread = threading.Thread(
            target=runner, name="service-http", daemon=True
        )
        self._http_thread.start()
        started.wait(timeout=10.0)
        if failure:
            self._http_thread = None
            raise failure[0]
        if self.address is None:
            raise RuntimeError("HTTP server failed to start in time")
        return self.address

    def stop_http(self) -> None:
        if self._loop is not None and self._http_thread is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._http_thread.join(timeout=10.0)
        self._loop = None
        self._server = None
        self._http_thread = None
        self.address = None

    # -- service operations (shared by HTTP and embedded use) -----------------

    def submit(self, payload: dict) -> JobRecord:
        """Validate, admit and enqueue one job; raises on rejection."""
        if (
            self.default_retry_budget is not None
            and isinstance(payload, dict)
            and "retry_budget" not in payload
        ):
            payload = {**payload, "retry_budget": self.default_retry_budget}
        spec = JobSpec.from_dict(payload)
        spec = self._resolve_dataset(spec)
        report = self.health_report()
        self.shedder.check_admission(
            spec.priority, report, self.queue.retry_after_hint()
        )  # may raise AdmissionRejected("shed_load")
        if self.spool_budget is not None:
            self.spool_budget.admit()  # may raise SpoolBudgetExceeded
        degraded = self.shedder.degrade_options(report)
        record = JobRecord(spec=spec)
        if degraded:
            spec, applied = self._degrade_spec(spec, degraded)
            record = JobRecord(spec=spec, id=record.id)
            record.degraded_by_brownout = applied
            if applied and self.metrics is not None:
                self.metrics.counter("service.jobs_degraded").inc()
        self.queue.submit(record)  # may raise AdmissionRejected
        with self._lock:
            self.jobs[record.id] = record
        if self.metrics is not None:
            self.metrics.counter("service.jobs_submitted").inc()
        return record

    @staticmethod
    def _degrade_spec(spec: JobSpec,
                      degradations: list[str]) -> tuple[JobSpec, list[str]]:
        """Apply brownout degradations to an admitted spec.

        Returns the (possibly rebuilt) spec plus the degradations that
        actually changed it -- forcing coarse on a job already running
        coarse, or skipping compose on a job with no output, is a no-op
        the record should not advertise.

        ``compose_budget:<bytes>`` is the degraded-tier middle ground:
        the job keeps its output, but the compose stage streams
        out-of-core under the given byte budget (never *raising* a
        budget the client already set lower).
        """
        fields = spec.to_dict()
        applied: list[str] = []
        if "coarse" in degradations and not fields["options"].get("coarse"):
            fields["options"] = {**fields["options"], "coarse": True}
            applied.append("coarse")
        if "skip_compose" in degradations and fields["output"] is not None:
            fields["output"] = None
            applied.append("skip_compose")
        for d in degradations:
            if not d.startswith("compose_budget:"):
                continue
            budget = int(d.partition(":")[2])
            current = fields["options"].get("memory_budget")
            if fields["output"] is not None and (
                current is None or int(current) > budget
            ):
                fields["options"] = {
                    **fields["options"], "memory_budget": budget,
                }
                applied.append(f"compose_budget:{budget}")
        if not applied:
            return spec, []
        return JobSpec(**fields), applied

    def _resolve_dataset(self, spec: JobSpec) -> JobSpec:
        path = Path(spec.dataset)
        if self.dataset_root is not None:
            candidate = (
                path if path.is_absolute() else self.dataset_root / path
            ).resolve()
            if not candidate.is_relative_to(self.dataset_root):
                raise ValueError(
                    f"dataset {spec.dataset!r} escapes the dataset root"
                )
            path = candidate
        if not path.is_dir():
            raise ValueError(f"dataset directory {path} does not exist")
        return JobSpec(**{**spec.to_dict(), "dataset": str(path)})

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self.jobs.get(job_id)
        if record is None:
            raise KeyError(job_id)
        return record

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a queued job immediately; flag a running one for its
        dispatcher to kill.  Idempotent on terminal jobs."""
        record = self.get(job_id)
        with self._lock:
            if record.state.terminal:
                return record
            record.cancel_requested = True
        if self.queue.cancel(job_id) is not None:
            # Still queued: the pool never saw it, finish it here.
            record.transition(JobState.CANCELLED)
            record.finished_at = self.clock()
            if self.metrics is not None:
                self.metrics.counter("service.jobs_cancelled").inc()
            self._on_transition(record)
        return record

    def result(self, job_id: str) -> dict:
        record = self.get(job_id)
        if record.state is not JobState.DONE:
            raise ServiceHTTPError(409, {
                "error": f"job {job_id} is {record.state.value}, not done",
                "state": record.state.value,
            })
        positions = json.loads(
            self.pool.positions_path(job_id).read_text()
        )
        return {"id": job_id, "summary": record.result, **positions}

    def wait(self, job_id: str, timeout: float = 60.0) -> JobRecord:
        """Block until the job reaches a terminal state (in-process use)."""
        deadline = time.monotonic() + timeout
        record = self.get(job_id)
        with self._transitions:
            while not record.state.terminal:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"job {job_id} still {record.state.value} "
                        f"after {timeout}s"
                    )
                self._transitions.wait(timeout=min(remaining, 0.5))
        return record

    def health_report(self) -> HealthReport:
        """Classify the service's live load into ok/degraded/browned_out."""
        workers = self.pool.worker_stats()
        return self.shedder.assess(
            depth=self.queue.depth(),
            max_depth=self.queue.max_depth,
            workers_alive=sum(1 for w in workers if w["alive"]),
            workers_total=len(workers),
            service_ewma=self.queue.service_ewma,
            breaker_state=self.pool.breaker.state,
        )

    def job_state_counts(self) -> dict[str, int]:
        with self._lock:
            counts = {state.value: 0 for state in JobState}
            for record in self.jobs.values():
                counts[record.state.value] += 1
        return counts

    # -- pool callbacks ------------------------------------------------------

    def _on_transition(self, record: JobRecord) -> None:
        with self._transitions:
            self._transitions.notify_all()

    def _resolve_positions(self, job_id: str) -> tuple[Path, str]:
        record = self.get(job_id)  # KeyError -> failed job with message
        if record.state is not JobState.DONE:
            raise ValueError(
                f"source job {job_id} is {record.state.value}, not done"
            )
        path = self.pool.positions_path(job_id)
        if not path.exists():
            raise ValueError(f"source job {job_id} has no positions file")
        return path, job_id

    # -- metrics -------------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        snap = self.metrics.snapshot()
        snap["jobs"] = self.job_state_counts()
        snap["queue"] = self.queue.stats()
        snap["workers"] = self.pool.worker_stats()
        snap["breaker"] = self.pool.breaker.snapshot()
        snap["health"] = self.health_report().to_dict()
        if self.spool_budget is not None:
            snap["spool"] = self.spool_budget.snapshot()
        return snap

    def metrics_text(self) -> str:
        """Prometheus-style exposition of the registry + job-state counts."""
        snap = self.metrics.snapshot()
        lines: list[str] = []

        def mangle(name: str) -> str:
            return "repro_" + re.sub(r"[^a-zA-Z0-9_]", "_", name)

        for name, value in snap["counters"].items():
            m = mangle(name)
            lines.append(f"# TYPE {m} counter")
            lines.append(f"{m} {value}")
        for name, g in snap["gauges"].items():
            m = mangle(name)
            lines.append(f"# TYPE {m} gauge")
            lines.append(f"{m} {g['value']}")
            lines.append(f"{m}_peak {g['peak']}")
        for name, h in snap["histograms"].items():
            m = mangle(name)
            lines.append(f"# TYPE {m} summary")
            lines.append(f"{m}_count {h.get('count', 0)}")
            lines.append(f"{m}_sum {h.get('sum', 0.0)}")
            for q, key in (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99")):
                if key in h:
                    lines.append(f'{m}{{quantile="{q}"}} {h[key]}')
        m = "repro_service_jobs"
        lines.append(f"# TYPE {m} gauge")
        for state, count in sorted(self.job_state_counts().items()):
            lines.append(f'{m}{{state="{state}"}} {count}')
        return "\n".join(lines) + "\n"

    # -- HTTP plumbing -------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            status, headers, payload = await self._dispatch(reader)
        except ServiceHTTPError as exc:
            status, headers, payload = exc.status, exc.headers, exc.payload
        except Exception as exc:  # pragma: no cover - defensive
            status, headers, payload = 500, {}, {
                "error": f"{type(exc).__name__}: {exc}"
            }
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            ctype = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = (json.dumps(payload) + "\n").encode("utf-8")
            ctype = "application/json"
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 405: "Method Not Allowed",
                  409: "Conflict", 429: "Too Many Requests",
                  500: "Internal Server Error"}.get(status, "")
        head = [f"HTTP/1.1 {status} {reason}",
                f"Content-Type: {ctype}",
                f"Content-Length: {len(body)}",
                "Connection: close"]
        for k, v in headers.items():
            head.append(f"{k}: {v}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body)
        try:
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):  # pragma: no cover
            pass

    async def _dispatch(self, reader: asyncio.StreamReader):
        request_line = (await reader.readline()).decode("ascii",
                                                        "replace").strip()
        if not request_line:
            raise ServiceHTTPError(400, {"error": "empty request"})
        try:
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            raise ServiceHTTPError(
                400, {"error": f"malformed request line {request_line!r}"}
            ) from None
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("ascii", "replace").strip()
            if not line:
                break
            key, _, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            raise ServiceHTTPError(
                400, {"error": f"body exceeds {MAX_BODY_BYTES} bytes"}
            )
        body = await reader.readexactly(length) if length else b""
        path, _, query = target.partition("?")
        return self._route(method, path, query, body)

    def _route(self, method: str, path: str, query: str, body: bytes):
        if path == "/jobs" and method == "POST":
            return self._ep_submit(body)
        if path == "/jobs" and method == "GET":
            return self._ep_list(query)
        m = _JOB_PATH.match(path)
        if m:
            job_id, rest = m.group("id"), m.group("rest")
            if rest is None and method == "GET":
                return 200, {}, self._record(job_id).to_dict()
            if rest == "/cancel" and method == "POST":
                return 200, {}, self.cancel_or_404(job_id).to_dict()
            if rest == "/result" and method == "GET":
                return 200, {}, self.result_or_404(job_id)
            raise ServiceHTTPError(
                405, {"error": f"{method} not allowed on {path}"}
            )
        if path == "/metrics" and method == "GET":
            return 200, {}, self.metrics_text()
        if path == "/metrics.json" and method == "GET":
            return 200, {}, self.metrics_snapshot()
        if path == "/healthz" and method == "GET":
            report = self.health_report()
            payload = {
                "ok": report.ok,
                "status": report.status,
                "reasons": list(report.reasons),
                "queue_depth": self.queue.depth(),
                "jobs": self.job_state_counts(),
                "workers": self.pool.worker_stats(),
                "breaker": self.pool.breaker.snapshot(),
            }
            if self.spool_budget is not None:
                payload["spool"] = self.spool_budget.snapshot()
            return 200, {}, payload
        raise ServiceHTTPError(404, {"error": f"no route {method} {path}"})

    def _record(self, job_id: str) -> JobRecord:
        try:
            return self.get(job_id)
        except KeyError:
            raise ServiceHTTPError(
                404, {"error": f"no job {job_id}"}
            ) from None

    def cancel_or_404(self, job_id: str) -> JobRecord:
        self._record(job_id)
        return self.cancel(job_id)

    def result_or_404(self, job_id: str) -> dict:
        self._record(job_id)
        return self.result(job_id)

    def _ep_submit(self, body: bytes):
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServiceHTTPError(
                400, {"error": f"bad JSON body: {exc}"}
            ) from None
        try:
            record = self.submit(payload)
        except AdmissionRejected as exc:
            raise ServiceHTTPError(
                429,
                {
                    "error": str(exc),
                    "reason": exc.reason,
                    "retry_after": exc.retry_after,
                },
                headers={"Retry-After": f"{exc.retry_after:.1f}"},
            ) from None
        except (ValueError, TypeError) as exc:
            raise ServiceHTTPError(400, {"error": str(exc)}) from None
        return 202, {}, record.to_dict()

    def _ep_list(self, query: str):
        tenant = None
        for part in query.split("&"):
            key, _, value = part.partition("=")
            if key == "tenant" and value:
                tenant = value
        with self._lock:
            records = [
                {
                    "id": r.id,
                    "state": r.state.value,
                    "tenant": r.spec.tenant,
                    "priority": r.spec.priority,
                    "attempts": r.attempts,
                }
                for r in self.jobs.values()
                if tenant is None or r.spec.tenant == tenant
            ]
        return 200, {}, {"jobs": records}
