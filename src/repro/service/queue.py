"""Multi-tenant priority job queue with admission control and backpressure.

The exemplar for this layer is feabas's batched ``num_overlaps_per_job``
dispatch: a standing pool drains chunked work, and the queue in front of
it is what turns "heavy traffic" into bounded memory and fair service.
Three policies, all deterministic (the stress tests drive an injected
clock):

- **bounded depth**: the queue holds at most ``max_depth`` jobs; a
  submit beyond that is rejected with a ``retry_after`` hint derived
  from the observed service rate (reject-with-retry-after, never
  block-the-socket);
- **per-tenant admission control**: one tenant may hold at most
  ``per_tenant_limit`` queued jobs, so a single noisy client cannot
  starve the rest of the fleet even when the queue has room;
- **fair ordering**: strictly higher priority first; within a priority,
  round-robin across tenants (least-recently-served tenant next); within
  one tenant's lane, FIFO by submission sequence.

An accepted job is never lost: it leaves the queue only via
:meth:`take` (handed to a worker), :meth:`cancel`, or :meth:`drain` at
shutdown -- the conservation invariant ``accepted == taken + cancelled
+ depth`` that ``tests/service/test_queue_stress.py`` asserts under
randomized load.  Requeued jobs (worker death, watchdog kill) re-enter
at the *front* of their lane, keeping their original FIFO slot.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.service.jobs import JobRecord, JobState


class AdmissionRejected(Exception):
    """Submission refused (queue full or tenant over its limit).

    ``retry_after`` is the server's estimate (seconds) of when capacity
    will exist again; it surfaces as HTTP 429 + ``Retry-After``.
    """

    def __init__(self, reason: str, retry_after: float, message: str):
        super().__init__(message)
        self.reason = reason
        self.retry_after = retry_after


class JobQueue:
    """Thread-safe bounded priority queue over :class:`JobRecord` lanes.

    ``clock`` is injectable (monotonic seconds) so ordering and
    retry-after arithmetic are testable without real time; ``workers``
    is the drain-rate hint used by the retry-after estimate.
    """

    def __init__(
        self,
        max_depth: int = 64,
        per_tenant_limit: int = 16,
        workers: int = 1,
        clock=time.monotonic,
        metrics=None,
    ) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if per_tenant_limit < 1:
            raise ValueError(
                f"per_tenant_limit must be >= 1, got {per_tenant_limit}"
            )
        self.max_depth = max_depth
        self.per_tenant_limit = per_tenant_limit
        self.workers = max(1, int(workers))
        self.clock = clock
        self.metrics = metrics
        self._cond = threading.Condition()
        #: ``(priority, tenant) -> deque[JobRecord]`` FIFO lanes.
        self._lanes: dict[tuple[int, str], deque] = {}
        #: Tenant -> take-counter value when last served (round-robin key).
        self._last_served: dict[str, int] = {}
        self._seq = 0
        self._takes = 0
        self._depth = 0
        self._closed = False
        # Conservation counters (exposed via stats(), asserted by tests).
        self.accepted = 0
        self.taken = 0
        self.cancelled = 0
        self.rejected_full = 0
        self.rejected_tenant = 0
        #: EWMA of per-job service seconds, fed back by the pool.
        self._service_ewma: float | None = None

    # -- admission -----------------------------------------------------------

    def _tenant_depth(self, tenant: str) -> int:
        return sum(
            len(lane)
            for (_, t), lane in self._lanes.items()
            if t == tenant
        )

    def retry_after_hint(self) -> float:
        """Seconds until capacity plausibly frees: depth / drain rate."""
        per_job = self._service_ewma if self._service_ewma else 1.0
        est = per_job * (self._depth + 1) / self.workers
        return min(60.0, max(0.1, est))

    def note_job_seconds(self, seconds: float) -> None:
        """Feed one completed job's wall time into the drain-rate EWMA."""
        with self._cond:
            if self._service_ewma is None:
                self._service_ewma = float(seconds)
            else:
                self._service_ewma = 0.8 * self._service_ewma + 0.2 * float(seconds)

    def submit(self, record: JobRecord) -> JobRecord:
        """Admit ``record`` or raise :class:`AdmissionRejected`.

        On admission the record gets its FIFO sequence number and
        submission timestamp; the caller still owns the record object
        (the server's job table and the queue share it).
        """
        with self._cond:
            if self._closed:
                raise AdmissionRejected(
                    "shutting_down", 60.0, "queue is shut down"
                )
            if self._depth >= self.max_depth:
                self.rejected_full += 1
                self._count("service.queue_rejected_full")
                raise AdmissionRejected(
                    "queue_full",
                    self.retry_after_hint(),
                    f"queue depth {self._depth} at limit {self.max_depth}",
                )
            tenant = record.spec.tenant
            if self._tenant_depth(tenant) >= self.per_tenant_limit:
                self.rejected_tenant += 1
                self._count("service.queue_rejected_tenant")
                raise AdmissionRejected(
                    "tenant_limit",
                    self.retry_after_hint(),
                    f"tenant {tenant!r} has {self.per_tenant_limit} jobs "
                    f"queued already",
                )
            record.seq = self._seq
            self._seq += 1
            record.submitted_at = self.clock()
            key = (record.spec.priority, tenant)
            self._lanes.setdefault(key, deque()).append(record)
            self._depth += 1
            self.accepted += 1
            self._count("service.queue_accepted")
            self._gauge()
            self._cond.notify()
            return record

    def requeue(self, record: JobRecord) -> None:
        """Put a job back at the *front* of its lane (worker died mid-run).

        Requeues bypass admission control: the job was already accepted
        once and dropping it now would violate the no-loss guarantee.
        """
        with self._cond:
            key = (record.spec.priority, record.spec.tenant)
            self._lanes.setdefault(key, deque()).appendleft(record)
            self._depth += 1
            self._count("service.jobs_requeued")
            self._gauge()
            self._cond.notify()

    # -- consumption ---------------------------------------------------------

    def _pick_lane(self):
        """The lane to serve next, or None.  Caller holds the lock."""
        live = [(key, lane) for key, lane in self._lanes.items() if lane]
        if not live:
            return None
        top = max(key[0] for key, _ in live)
        # Round-robin: among this priority's tenants, the one served
        # longest ago wins; ties break lexicographically for determinism.
        candidates = [(key, lane) for key, lane in live if key[0] == top]
        candidates.sort(
            key=lambda kl: (self._last_served.get(kl[0][1], -1), kl[0][1])
        )
        return candidates[0]

    def take(self, timeout: float | None = None) -> JobRecord | None:
        """Next job by (priority, tenant-fairness, FIFO); None on timeout
        or shutdown-with-empty-queue."""
        with self._cond:
            while True:
                picked = self._pick_lane()
                if picked is not None:
                    key, lane = picked
                    record = lane.popleft()
                    self._depth -= 1
                    self._takes += 1
                    self._last_served[key[1]] = self._takes
                    self.taken += 1
                    self._count("service.queue_taken")
                    self._gauge()
                    if self.metrics is not None:
                        self.metrics.histogram(
                            "service.queue_wait_seconds"
                        ).observe(self.clock() - record.submitted_at)
                    return record
                if self._closed:
                    return None
                if not self._cond.wait(timeout):
                    return None

    def cancel(self, job_id: str) -> JobRecord | None:
        """Remove a still-queued job; returns it, or None if not queued."""
        with self._cond:
            for lane in self._lanes.values():
                for record in lane:
                    if record.id == job_id:
                        lane.remove(record)
                        self._depth -= 1
                        self.cancelled += 1
                        self._gauge()
                        return record
            return None

    # -- introspection / lifecycle -------------------------------------------

    def rebalance_rotation(self) -> None:
        """Drop rotation memory for tenants with nothing queued.

        Called after a quarantine removes a tenant's job from
        circulation without a requeue: a tenant whose lanes went quiet
        should re-enter the least-recently-served rotation as *new*
        (served first on return), not carry the stale take-counter its
        poison job earned while monopolizing a worker.
        """
        with self._cond:
            live = {t for (_, t), lane in self._lanes.items() if lane}
            for tenant in [t for t in self._last_served if t not in live]:
                del self._last_served[tenant]

    def depth(self) -> int:
        with self._cond:
            return self._depth

    @property
    def service_ewma(self) -> float | None:
        """Current per-job service-seconds EWMA (None until first job)."""
        with self._cond:
            return self._service_ewma

    def depth_by_tenant(self) -> dict[str, int]:
        with self._cond:
            out: dict[str, int] = {}
            for (_, tenant), lane in self._lanes.items():
                if lane:
                    out[tenant] = out.get(tenant, 0) + len(lane)
            return out

    def stats(self) -> dict:
        with self._cond:
            return {
                "depth": self._depth,
                "accepted": self.accepted,
                "taken": self.taken,
                "cancelled": self.cancelled,
                "rejected_full": self.rejected_full,
                "rejected_tenant": self.rejected_tenant,
            }

    def close(self) -> None:
        """Stop admitting; wake blocked takers (they drain, then get None)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def drain(self) -> list[JobRecord]:
        """Remove and return every queued job (shutdown path)."""
        with self._cond:
            out = []
            for lane in self._lanes.values():
                while lane:
                    out.append(lane.popleft())
            self._depth = 0
            self._gauge()
            out.sort(key=lambda r: r.seq)
            return out

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def _gauge(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("service.queue_depth").set(self._depth)


__all__ = ["AdmissionRejected", "JobQueue", "JobRecord", "JobState"]
