"""Stitching-as-a-service: a long-lived job server over the stitcher.

Every capability the system has grown -- GIL-free process workers,
crash-safe journals, watchdog supervision, the metrics registry -- was
reachable only through one-shot CLI invocations.  This package turns
them into a standing service:

- :mod:`repro.service.jobs` -- the job model (spec, record, states);
- :mod:`repro.service.queue` -- multi-tenant priority queue with
  admission control and backpressure;
- :mod:`repro.service.pool` -- persistent forked worker processes that
  keep warm :class:`~repro.fftlib.plans.PlanCache` state between jobs,
  journal every job for crash-resume, and run under per-job
  :class:`~repro.recovery.watchdog.Watchdog` supervision;
- :mod:`repro.service.server` -- the asyncio HTTP/JSON front end
  (submit/status/cancel/result/metrics endpoints);
- :mod:`repro.service.client` -- a thin blocking client for tests,
  examples and the CI smoke job;
- :mod:`repro.service.resilience` -- poison-job quarantine, crash-loop
  circuit breaking, brownout load shedding and the spool disk budget.

Start one with ``python -m repro serve DATASET_ROOT`` or embed
:class:`~repro.service.server.StitchService` directly (the e2e tests
do).  See docs/API.md "Running as a service".
"""

from repro.service.client import (
    BackpressureError,
    JobFailedError,
    ServiceClient,
    ServiceError,
)
from repro.service.jobs import JobRecord, JobSpec, JobState
from repro.service.queue import AdmissionRejected, JobQueue
from repro.service.pool import WorkerPool
from repro.service.resilience import (
    BreakerConfig,
    BreakerState,
    BrownoutPolicy,
    CircuitBreaker,
    HealthReport,
    LoadShedder,
    PoisonTracker,
    ResilienceConfig,
    SpoolBudget,
    SpoolBudgetExceeded,
)
from repro.service.server import StitchService

__all__ = [
    "AdmissionRejected",
    "BackpressureError",
    "BreakerConfig",
    "BreakerState",
    "BrownoutPolicy",
    "CircuitBreaker",
    "HealthReport",
    "JobFailedError",
    "JobQueue",
    "JobRecord",
    "JobSpec",
    "JobState",
    "LoadShedder",
    "PoisonTracker",
    "ResilienceConfig",
    "ServiceClient",
    "ServiceError",
    "SpoolBudget",
    "SpoolBudgetExceeded",
    "StitchService",
    "WorkerPool",
]
