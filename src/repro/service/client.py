"""Thin blocking HTTP client for the stitching service.

Stdlib-only (``http.client``), one connection per call -- the server
closes connections after each response anyway.  The client's job is to
turn HTTP status codes back into Python semantics: 429 becomes
:class:`BackpressureError` carrying the server's ``Retry-After`` hint,
other non-2xx become :class:`ServiceError` with the server's message,
and a terminal failed/quarantined job surfaces (on request) as
:class:`JobFailedError` rendering the server's structured error detail
-- exception type, last journal milestone, per-attempt death signals --
instead of a flat string.
"""

from __future__ import annotations

import http.client
import json
import random
import time


class ServiceError(Exception):
    """Non-2xx response from the service (other than backpressure)."""

    def __init__(self, status: int, payload: dict):
        message = payload.get("error", f"HTTP {status}")
        super().__init__(f"[{status}] {message}")
        self.status = status
        self.payload = payload


class BackpressureError(ServiceError):
    """HTTP 429: submission rejected; retry after ``retry_after`` seconds."""

    def __init__(self, status: int, payload: dict, retry_after: float):
        super().__init__(status, payload)
        self.retry_after = retry_after
        self.reason = payload.get("reason", "rejected")


class JobFailedError(Exception):
    """A waited-on job reached ``failed`` or ``quarantined``.

    The message folds in the server's structured ``error_detail`` so an
    operator reading a stack trace sees what actually happened --
    exception type, how far the journal got, what killed the workers --
    without a follow-up status call.  The full record is on ``.record``.
    """

    def __init__(self, record: dict):
        self.record = record
        self.state = record.get("state", "failed")
        self.detail = record.get("error_detail") or {}
        parts = [
            f"job {record.get('id')} {self.state}: "
            f"{record.get('error') or 'unknown error'}"
        ]
        if self.detail.get("type"):
            parts.append(f"type={self.detail['type']}")
        if self.detail.get("attempts"):
            parts.append(f"attempts={self.detail['attempts']}")
        if self.detail.get("last_milestone"):
            parts.append(f"last_milestone={self.detail['last_milestone']}")
        if self.detail.get("death_signals"):
            parts.append(
                "death_signals=" + ",".join(self.detail["death_signals"])
            )
        super().__init__(" | ".join(parts))


class ServiceClient:
    """Talks to one :class:`~repro.service.server.StitchService`."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- transport -----------------------------------------------------------

    def _request(self, method: str, path: str, body: dict | None = None):
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            raw = resp.read()
            ctype = resp.getheader("Content-Type", "")
            if ctype.startswith("application/json"):
                data = json.loads(raw.decode("utf-8"))
            else:
                data = raw.decode("utf-8")
            if resp.status == 429:
                retry_after = float(
                    resp.getheader("Retry-After")
                    or (data.get("retry_after", 1.0)
                        if isinstance(data, dict) else 1.0)
                )
                raise BackpressureError(resp.status, data, retry_after)
            if resp.status >= 400:
                if not isinstance(data, dict):
                    data = {"error": str(data)}
                raise ServiceError(resp.status, data)
            return data
        finally:
            conn.close()

    # -- API -----------------------------------------------------------------

    def submit(self, spec: dict) -> dict:
        """POST a job spec; returns the accepted job record (202)."""
        return self._request("POST", "/jobs", body=spec)

    def submit_with_retry(self, spec: dict, attempts: int = 10,
                          max_wait: float = 5.0, base_wait: float = 0.05,
                          sleep=time.sleep, rng: random.Random | None = None,
                          ) -> dict:
        """Submit, honouring backpressure with decorrelated-jitter waits.

        Each rejection sleeps ``uniform(base_wait, 3 * previous_wait)``
        (AWS-style decorrelated jitter, so a burst of rejected clients
        spreads out instead of retrying in lockstep), floored by the
        server's honest ``Retry-After`` hint and capped at ``max_wait``.
        ``sleep`` and ``rng`` are injectable so the unit tests drive the
        loop on a fake clock with a seeded stream.  Gives up
        (re-raising) after ``attempts`` rejections.
        """
        rng = rng if rng is not None else random.Random()
        last: BackpressureError | None = None
        wait = base_wait
        for _ in range(attempts):
            try:
                return self.submit(spec)
            except BackpressureError as exc:
                last = exc
                wait = min(max_wait, rng.uniform(base_wait, wait * 3))
                wait = max(wait, min(exc.retry_after, max_wait))
                sleep(wait)
        assert last is not None
        raise last

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def list_jobs(self, tenant: str | None = None) -> list[dict]:
        path = "/jobs" + (f"?tenant={tenant}" if tenant else "")
        return self._request("GET", path)["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def result(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}/result")

    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 0.2, raise_on_failure: bool = False) -> dict:
        """Poll until the job is terminal; returns the final record.

        With ``raise_on_failure`` a terminal ``failed``/``quarantined``
        state raises :class:`JobFailedError` rendering the structured
        error detail instead of returning a record the caller must
        inspect.
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self.status(job_id)
            if record["state"] in ("done", "failed", "cancelled",
                                   "quarantined"):
                if raise_on_failure and record["state"] in ("failed",
                                                            "quarantined"):
                    raise JobFailedError(record)
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} after {timeout}s"
                )
            time.sleep(poll)

    def metrics_text(self) -> str:
        return self._request("GET", "/metrics")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics.json")

    def health(self) -> dict:
        return self._request("GET", "/healthz")
