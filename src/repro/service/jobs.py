"""The service's job model: what a client submits, what the server tracks.

A :class:`JobSpec` is the client-facing request -- which dataset to
stitch, under which tenant, at what priority, with which (whitelisted)
stitcher options.  A :class:`JobRecord` is the server-side lifecycle
object wrapped around it: state machine, attempt counter, timestamps and
the eventual result summary.  Records are what every endpoint serializes.

Two job shapes exist, mirroring the workloads a real plate-scanning
service sees:

- **full** jobs run phases 1-3 (registration + solve, optional compose);
- **parameter-reuse** jobs (``reuse_positions_from``) skip registration
  entirely and apply a completed job's solved positions to another
  channel/plane of the same scan -- the cheap job shape multi-channel
  acquisition produces (see ``Stitcher.stitch_channels``).
"""

from __future__ import annotations

import re
import uuid
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

#: Stitcher keyword arguments a job spec may set.  Everything else --
#: tracing, checkpoint paths, plan caches -- is owned by the service
#: (the checkpoint directory in particular *is* the job's durability
#: story and must not be client-controlled).
ALLOWED_OPTIONS = frozenset({
    "position_method",
    "subpixel",
    "n_peaks",
    "max_retries",
    "on_tile_error",
    "quality",
    "conf_thresh",
    "residue_mode",
    "min_peak_ratio",
    "refine",
    "coarse",
    "coarse_scale",
    "coarse_conf_thresh",
    #: Out-of-core composition: hard byte budget for the compose stage
    #: (stripe buffers + LRU tile cache), and streamed 2x pyramid levels
    #: written next to the output mosaic.
    "memory_budget",
    "pyramid_levels",
})

#: Output blend modes a job may request for its optional mosaic.
#: All four stream bit-identically to the in-memory path (LINEAR
#: feathering normalizes per stripe, the row-restriction of the global
#: computation).
ALLOWED_BLENDS = ("overlay", "average", "maximum", "linear")

_TENANT_RE = re.compile(r"^[A-Za-z0-9_.-]{1,64}$")
_JOB_ID_RE = re.compile(r"^[a-f0-9]{12}$")


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    #: Terminal isolation state: the job's attempts killed too many
    #: workers (poison input); it is never requeued and carries a
    #: structured post-mortem instead of a result.
    QUARANTINED = "quarantined"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED,
                        JobState.QUARANTINED)


def new_job_id() -> str:
    return uuid.uuid4().hex[:12]


@dataclass(frozen=True)
class JobSpec:
    """A validated stitch request.

    ``priority`` is an integer in [0, 9]; higher runs first.  ``tenant``
    names the admission-control bucket.  ``deadline_seconds`` is the
    per-job watchdog budget (None = the pool default);
    ``retry_budget`` is how many times the service may re-queue the job
    after a worker death or watchdog kill before declaring it failed.
    """

    dataset: str
    tenant: str = "default"
    priority: int = 0
    options: dict = field(default_factory=dict)
    #: Completed job id whose solved positions this job applies
    #: (parameter-reuse: phase 3 only, no registration).
    reuse_positions_from: str | None = None
    #: Optional mosaic output path (streamed TIFF) and blend mode.
    output: str | None = None
    blend: str = "overlay"
    #: ``SEED[:kind=count,...]`` fault-injection spec (testing/chaos).
    inject_faults: str | None = None
    deadline_seconds: float | None = None
    retry_budget: int = 1

    def __post_init__(self) -> None:
        if not self.dataset:
            raise ValueError("job spec needs a dataset path")
        if not _TENANT_RE.match(self.tenant):
            raise ValueError(
                f"tenant must match {_TENANT_RE.pattern}, got {self.tenant!r}"
            )
        if not 0 <= int(self.priority) <= 9:
            raise ValueError(f"priority must be in [0, 9], got {self.priority}")
        unknown = set(self.options) - ALLOWED_OPTIONS
        if unknown:
            raise ValueError(
                f"unknown job options {sorted(unknown)} "
                f"(allowed: {sorted(ALLOWED_OPTIONS)})"
            )
        if self.blend not in ALLOWED_BLENDS:
            raise ValueError(
                f"blend must be one of {ALLOWED_BLENDS}, got {self.blend!r}"
            )
        if self.reuse_positions_from is not None and not _JOB_ID_RE.match(
            self.reuse_positions_from
        ):
            raise ValueError(
                f"reuse_positions_from must be a job id, "
                f"got {self.reuse_positions_from!r}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be > 0, got {self.deadline_seconds}"
            )
        if self.retry_budget < 0:
            raise ValueError(f"retry_budget must be >= 0, got {self.retry_budget}")

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        """Build a spec from a request body, rejecting unknown keys."""
        if not isinstance(payload, dict):
            raise ValueError("job spec must be a JSON object")
        known = {
            "dataset", "tenant", "priority", "options",
            "reuse_positions_from", "output", "blend", "inject_faults",
            "deadline_seconds", "retry_budget",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown job spec keys {sorted(unknown)}")
        kwargs: dict[str, Any] = dict(payload)
        if "priority" in kwargs:
            kwargs["priority"] = int(kwargs["priority"])
        if "retry_budget" in kwargs:
            kwargs["retry_budget"] = int(kwargs["retry_budget"])
        if "options" in kwargs and kwargs["options"] is None:
            kwargs["options"] = {}
        return cls(**kwargs)

    def to_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "tenant": self.tenant,
            "priority": self.priority,
            "options": dict(self.options),
            "reuse_positions_from": self.reuse_positions_from,
            "output": self.output,
            "blend": self.blend,
            "inject_faults": self.inject_faults,
            "deadline_seconds": self.deadline_seconds,
            "retry_budget": self.retry_budget,
        }


@dataclass
class JobRecord:
    """Server-side lifecycle of one submitted job.

    State transitions (enforced by :meth:`transition`)::

        queued -> running -> done | failed | cancelled | quarantined
        running -> queued            (requeue after worker death/kill)
        queued -> cancelled

    ``attempts`` counts executions started; a job whose worker died
    ``retry_budget`` times fails rather than requeueing forever, and a
    job attributed ``quarantine_threshold`` worker deaths is quarantined
    with a post-mortem regardless of remaining budget.
    """

    spec: JobSpec
    id: str = field(default_factory=new_job_id)
    state: JobState = JobState.QUEUED
    #: Monotonic submission sequence number, assigned by the queue --
    #: the FIFO key within a (tenant, priority) lane.
    seq: int = -1
    attempts: int = 0
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    worker: int | None = None
    error: str | None = None
    #: Exception class name for worker-reported failures (structured
    #: error detail; the flat ``error`` string keeps the full message).
    error_type: str | None = None
    #: Worker-reported summary (pairs, timings, plan-cache hits, journal).
    result: dict | None = None
    cancel_requested: bool = False
    #: Per-attempt worker-death records (signal, cause, clock) filled in
    #: by the pool's poison tracker.
    death_events: list = field(default_factory=list)
    #: Quarantine post-mortem (deaths, signals, last journal milestone).
    post_mortem: dict | None = None
    #: Journal milestone the job had durably reached when it failed.
    last_milestone: str | None = None
    #: Brownout degradations applied at admission (e.g. ["coarse"]).
    degraded_by_brownout: list = field(default_factory=list)

    _VALID = {
        JobState.QUEUED: (JobState.RUNNING, JobState.CANCELLED),
        JobState.RUNNING: (
            JobState.DONE, JobState.FAILED, JobState.CANCELLED,
            JobState.QUEUED, JobState.QUARANTINED,
        ),
        JobState.DONE: (),
        JobState.FAILED: (),
        JobState.CANCELLED: (),
        JobState.QUARANTINED: (),
    }

    def transition(self, to: JobState) -> None:
        if to not in self._VALID[self.state]:
            raise ValueError(f"illegal job transition {self.state} -> {to}")
        self.state = to

    def error_detail(self) -> dict | None:
        """Structured failure report for the status endpoint.

        ``None`` for healthy jobs; for failed/quarantined ones the
        client gets machine-usable fields -- exception type, the last
        journal milestone the run durably reached, the attempt count and
        every attributed worker-death signal -- instead of a flat
        message it would have to parse.
        """
        if self.error is None and not self.death_events:
            return None
        detail = {
            "error": self.error,
            "type": self.error_type,
            "attempts": self.attempts,
            "last_milestone": self.last_milestone,
            "death_signals": [
                e["signal"] if isinstance(e, dict) else e.signal
                for e in self.death_events
            ],
        }
        if self.post_mortem is not None:
            detail["post_mortem"] = self.post_mortem
        return detail

    def to_dict(self) -> dict:
        """JSON payload for the status endpoint."""
        return {
            "id": self.id,
            "state": self.state.value,
            "tenant": self.spec.tenant,
            "priority": self.spec.priority,
            "dataset": self.spec.dataset,
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "worker": self.worker,
            "error": self.error,
            "error_detail": self.error_detail(),
            "result": self.result,
            "degraded_by_brownout": list(self.degraded_by_brownout),
            "spec": self.spec.to_dict(),
        }
