"""Persistent warm worker pool: forked processes that outlive their jobs.

Copik's parallel-registration thesis motivates the core economics here:
per-job startup cost (process spawn, FFT planning, import time) must
amortize to zero under sustained traffic, which means workers are
*persistent* -- each holds a warm :class:`~repro.fftlib.plans.PlanCache`
across jobs, so the second same-geometry job plans nothing and reports
``plan_cache.hits > 0``.

Durability and supervision reuse the recovery layer wholesale:

- every job runs with ``Stitcher(checkpoint=<spool>/jobs/<id>/ckpt)``,
  so its :class:`~repro.recovery.journal.RunJournal` is the per-job
  durability store.  A worker SIGKILLed mid-phase-1 loses nothing
  durable; the pool detects the death, re-queues the job (within its
  retry budget), and the next attempt resumes from the journal --
  recomputing only un-journaled pairs, positions bit-identical;
- each running job is supervised by a
  :class:`~repro.recovery.watchdog.Watchdog` over a small adapter that
  presents the job as a one-item pipeline whose progress counter is the
  journal's durable record count.  A job past its deadline gets its
  token cancelled (the dispatcher kills the worker and re-queues); a
  job writing no journal records for ``stall_timeout`` seconds
  escalates the same way.

The dispatcher side is one thread per worker slot: take a job from the
:class:`~repro.service.queue.JobQueue`, ship it over the worker's pipe,
supervise, classify the outcome (done / failed / died-requeue /
cancelled), respawn the worker if it died.  All shared state mutation
(job records, metrics) happens on the dispatcher threads; the registry
is thread-safe.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import threading
import time
import traceback
from dataclasses import replace
from pathlib import Path

from repro.recovery.cancel import CancelToken
from repro.recovery.harness import count_journal_records
from repro.recovery.journal import checkpoint_journal_path
from repro.recovery.watchdog import Watchdog, WatchdogConfig
from repro.service.jobs import JobRecord, JobState
from repro.service.queue import JobQueue
from repro.service.resilience import (
    CircuitBreaker,
    PoisonTracker,
    ResilienceConfig,
    describe_exit,
)

#: Default supervision thresholds for service jobs: no per-job deadline
#: unless the spec names one, and a generous no-journal-progress window
#: (phase 2/3 legitimately write no pair records).
DEFAULT_WATCHDOG = WatchdogConfig(
    item_deadline=None, stall_timeout=120.0, poll_interval=0.05
)


# -- worker process side -----------------------------------------------------


def _write_atomic(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, path)


def _build_stitcher(options: dict, plan_cache, checkpoint: str | None):
    from repro.core.stitcher import Stitcher

    quality = options.get("quality")
    return Stitcher(
        position_method=options.get("position_method", "mst"),
        subpixel=bool(options.get("subpixel", False)),
        n_peaks=int(options.get("n_peaks", 2)),
        max_retries=int(options.get("max_retries", 0)),
        on_tile_error=options.get("on_tile_error", "abort"),
        quality=bool(quality) if quality is not None else None,
        conf_thresh=options.get("conf_thresh"),
        residue_mode=options.get("residue_mode"),
        min_peak_ratio=options.get("min_peak_ratio"),
        refine=bool(options.get("refine", False)),
        coarse=(
            bool(options["coarse"]) if options.get("coarse") is not None
            else None
        ),
        coarse_scale=options.get("coarse_scale"),
        coarse_conf_thresh=options.get("coarse_conf_thresh"),
        cache=plan_cache,
        checkpoint=checkpoint,
        resume="auto",
        metrics=True,
    )


def _execute_job(msg: dict, warm: dict) -> dict:
    """Run one job in the worker; returns the reply summary payload."""
    import numpy as np

    from repro.core.compose import BlendMode
    from repro.core.global_opt import GlobalPositions
    from repro.io.dataset import TileDataset

    spec = msg["spec"]
    job_dir = Path(msg["job_dir"])
    job_dir.mkdir(parents=True, exist_ok=True)
    dataset = TileDataset(spec["dataset"])
    if spec.get("inject_faults"):
        from repro.faults import FaultPlan

        plan = FaultPlan.from_spec(
            spec["inject_faults"], dataset.rows, dataset.cols
        )
        dataset = plan.wrap_dataset(dataset)

    plan_cache = warm["plan_cache"]
    hits0, misses0 = plan_cache.hits, plan_cache.misses
    shapes0 = {
        (tuple(row["shape"]), row["kind"]): (row["hits"], row["misses"])
        for row in plan_cache.stats()["per_shape"]
    }
    t0 = time.perf_counter()
    skipped: list = []
    summary: dict = {}

    reuse_path = msg.get("reuse_positions_path")
    if reuse_path is not None:
        # Parameter-reuse job: apply a completed job's solved positions
        # to this dataset (same scan, another channel/plane) -- phase 3
        # only, the cheap job shape of multi-channel acquisition.
        payload = json.loads(Path(reuse_path).read_text())
        positions = np.asarray(payload["positions"], dtype=np.int64)
        if positions.shape != (dataset.rows, dataset.cols, 2):
            raise ValueError(
                f"reused positions shape {positions.shape} does not fit "
                f"dataset grid {dataset.rows}x{dataset.cols}"
            )
        gp = GlobalPositions(positions=positions, method="reused")
        summary.update({
            "kind": "reuse",
            "pairs": 0,
            "reused_from": msg.get("reuse_source_job"),
            "phase1_seconds": 0.0,
            "phase2_seconds": 0.0,
        })
    else:
        stitcher = _build_stitcher(
            spec.get("options", {}), plan_cache, str(job_dir / "ckpt")
        )
        result = stitcher.stitch(dataset)
        gp = result.positions
        skipped = result.skipped_tiles()
        summary.update({
            "kind": "full",
            "pairs": int(result.stats.get("pairs", 0)),
            "phase1_seconds": result.phase1_seconds,
            "phase2_seconds": result.phase2_seconds,
            "journal": result.stats.get("journal"),
            "degraded_tiles": len(gp.degraded_tiles()),
            "skipped_tiles": [list(rc) for rc in skipped],
        })
        if "quality_report" in result.stats:
            summary["quality_report"] = result.stats["quality_report"]
        for key in ("coarse_hits", "full_fallbacks"):
            if key in result.stats:
                summary[key] = int(result.stats[key])

    positions_path = job_dir / "positions.json"
    _write_atomic(
        positions_path,
        json.dumps({
            "positions": gp.positions.tolist(),
            "method": gp.method,
            "degraded": [list(rc) for rc in gp.degraded_tiles()],
            "skipped": [list(rc) for rc in skipped],
        }),
    )
    if spec.get("output"):
        from repro.core.streamcompose import stream_compose_to_tiff

        options = spec.get("options", {})
        memory_budget = options.get("memory_budget")
        sres = stream_compose_to_tiff(
            spec["output"],
            lambda r, c: dataset.load(r, c, dtype=None),
            gp, dataset.tile_shape,
            blend=BlendMode(spec.get("blend", "overlay")),
            memory_budget=(
                int(memory_budget) if memory_budget is not None else None
            ),
            pyramid_levels=int(options.get("pyramid_levels", 0) or 0),
            skip_tiles=skipped,
            on_tile_error=options.get("on_tile_error", "abort"),
        )
        summary["output"] = spec["output"]
        summary["compose"] = {
            "stripes": sres.stripes,
            "band_rows": sres.band_rows,
            "peak_bytes": sres.peak_bytes,
            "memory_budget": sres.memory_budget,
            "cache": sres.cache,
            "pyramid": [str(p) for p in sres.pyramid_paths],
        }

    warm["jobs_served"] += 1
    summary.update({
        "job_seconds": time.perf_counter() - t0,
        "positions_path": str(positions_path),
        "plan_cache": {
            "hits": plan_cache.hits - hits0,
            "misses": plan_cache.misses - misses0,
            "entries": len(plan_cache),
            # Per-(shape, kind) deltas for *this* job: a warm worker's
            # second same-geometry job shows hits and no misses on every
            # row -- including the coarse-shape rows when the job ran
            # coarse-to-fine registration.
            "per_shape": [
                {
                    **row,
                    "hits": row["hits"] - shapes0.get(
                        (tuple(row["shape"]), row["kind"]), (0, 0))[0],
                    "misses": row["misses"] - shapes0.get(
                        (tuple(row["shape"]), row["kind"]), (0, 0))[1],
                }
                for row in plan_cache.stats()["per_shape"]
            ],
        },
        "worker_jobs_served": warm["jobs_served"],
        "worker_pid": os.getpid(),
    })
    return summary


def _worker_main(conn, worker_id: int) -> None:
    """Worker loop: serve jobs from the pipe until told to shut down.

    The warm dict survives across jobs -- that persistence is the whole
    point of the pool.  Every exception is reported back as a failed
    job, never a dead worker; only SIGKILL (or a shutdown message) ends
    the loop.
    """
    from repro.fftlib.plans import PlanCache

    warm = {"plan_cache": PlanCache(), "jobs_served": 0}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None or msg.get("op") == "shutdown":
            break
        try:
            summary = _execute_job(msg, warm)
            conn.send({"id": msg["id"], "ok": True, "summary": summary})
        except Exception as exc:
            conn.send({
                "id": msg["id"],
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "error_type": type(exc).__name__,
                "traceback": traceback.format_exc(limit=8),
            })


# -- parent side -------------------------------------------------------------


class _JobRun:
    """Watchdog adapter: one running job as a one-item, no-queue pipeline.

    Progress (``items_processed``) is the job journal's durable record
    count, so "stall" means *no durable progress*, not merely no return
    value.  ``abort`` SIGKILLs the worker -- the escalation path; the
    fsync'd journal is exactly what makes that safe.
    """

    def __init__(self, name: str, journal_path: Path, token: CancelToken,
                 kill) -> None:
        self.name = name
        self._journal_path = journal_path
        self.token = token
        self._kill = kill
        self._t0 = time.monotonic()
        self.stages = [self]
        self.queues: list = []

    @property
    def items_processed(self) -> int:
        return count_journal_records(self._journal_path)

    def inflight(self):
        return [(0, self.name, self._t0, self.token)]

    def abort(self) -> None:
        self._kill()


class _WorkerHandle:
    """One persistent worker process plus its parent-side pipe end."""

    def __init__(self, ctx, worker_id: int) -> None:
        self.worker_id = worker_id
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=_worker_main,
            args=(child_conn, worker_id),
            name=f"stitch-worker-{worker_id}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.jobs_served = 0

    @property
    def pid(self) -> int | None:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        try:
            self.process.kill()
        except (OSError, ValueError):  # pragma: no cover - defensive
            pass

    def shutdown(self, timeout: float = 5.0) -> None:
        if self.alive():
            try:
                self.conn.send({"op": "shutdown"})
            except (OSError, BrokenPipeError):
                pass
        self.process.join(timeout=timeout)
        if self.alive():
            self.kill()
            self.process.join(timeout=timeout)
        self.conn.close()


class WorkerPool:
    """N persistent workers draining a :class:`JobQueue`.

    ``resolve_positions(job_id) -> (path, source_id)`` is supplied by
    the service layer to turn ``reuse_positions_from`` references into
    concrete result files (and to enforce that the source job is DONE).
    ``on_transition(record)`` fires after every state change the pool
    makes -- the server uses it for bookkeeping; tests use it to block
    until a job settles.
    """

    def __init__(
        self,
        queue: JobQueue,
        spool_dir: str | Path,
        workers: int = 2,
        metrics=None,
        watchdog: WatchdogConfig = DEFAULT_WATCHDOG,
        resolve_positions=None,
        on_transition=None,
        clock=time.monotonic,
        resilience: ResilienceConfig | None = None,
        tracer=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.queue = queue
        self.spool_dir = Path(spool_dir)
        self.workers = workers
        self.metrics = metrics
        self.watchdog_config = watchdog
        self.resolve_positions = resolve_positions
        self.on_transition = on_transition
        self.clock = clock
        self.tracer = tracer
        self.resilience = resilience or ResilienceConfig()
        #: Crash-loop breaker gating every dispatch (see resilience.py).
        self.breaker = CircuitBreaker(
            self.resilience.breaker, clock=clock, metrics=metrics,
            tracer=tracer,
        )
        #: Per-job worker-death attribution feeding quarantine decisions.
        self.poison = PoisonTracker(
            self.resilience.quarantine_threshold, clock=clock
        )
        self._ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        self._handles: list[_WorkerHandle | None] = [None] * workers
        self._threads: list[threading.Thread] = []
        #: Consecutive deaths per slot, resetting on a surviving reply --
        #: the exponent of the respawn backoff.
        self._consecutive_deaths: dict[int, int] = {}
        self._stopping = threading.Event()
        self._lock = threading.Lock()
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "WorkerPool":
        if self._started:
            raise RuntimeError("pool already started")
        self._started = True
        self.spool_dir.mkdir(parents=True, exist_ok=True)
        for i in range(self.workers):
            self._handles[i] = _WorkerHandle(self._ctx, i)
            t = threading.Thread(
                target=self._dispatch_loop, args=(i,),
                name=f"dispatch-{i}", daemon=True,
            )
            self._threads.append(t)
            t.start()
        if self.metrics is not None:
            self.metrics.gauge("service.workers").set(self.workers)
        return self

    def stop(self, timeout: float = 10.0) -> None:
        self._stopping.set()
        self.queue.close()
        for t in self._threads:
            t.join(timeout=timeout)
        for handle in self._handles:
            if handle is not None:
                handle.shutdown()

    def worker_pids(self) -> list[int | None]:
        return [h.pid if h is not None else None for h in self._handles]

    def worker_stats(self) -> list[dict]:
        return [
            {
                "worker": i,
                "pid": h.pid if h is not None else None,
                "alive": h.alive() if h is not None else False,
                "jobs_served": h.jobs_served if h is not None else 0,
            }
            for i, h in enumerate(self._handles)
        ]

    # -- job paths -----------------------------------------------------------

    def job_dir(self, job_id: str) -> Path:
        return self.spool_dir / "jobs" / job_id

    def journal_path(self, job_id: str) -> Path:
        return checkpoint_journal_path(self.job_dir(job_id) / "ckpt")

    def positions_path(self, job_id: str) -> Path:
        return self.job_dir(job_id) / "positions.json"

    # -- dispatch ------------------------------------------------------------

    def _dispatch_loop(self, slot: int) -> None:
        while not self._stopping.is_set():
            # The breaker is the dispatch gate: CLOSED serves normally,
            # OPEN makes every slot wait out the cooldown, HALF_OPEN
            # grants exactly one canary permit at a time.
            permit = self.breaker.acquire()
            if permit is None:
                self._stopping.wait(0.05)
                continue
            record = self.queue.take(timeout=0.1)
            if record is None:
                self.breaker.abandon(permit)
                continue
            if record.cancel_requested:
                self.breaker.abandon(permit)
                self._finish(record, JobState.CANCELLED)
                continue
            died = False
            try:
                died = self._run_job(slot, record) == "died"
            except Exception as exc:  # pragma: no cover - defensive
                record.error = f"dispatcher error: {exc}"
                self._finish(record, JobState.FAILED)
            finally:
                self.breaker.release(permit, died)

    def _ensure_worker(self, slot: int) -> _WorkerHandle:
        handle = self._handles[slot]
        if handle is None or not handle.alive():
            if handle is not None:
                handle.shutdown(timeout=1.0)
                self._count("service.workers_respawned")
            handle = _WorkerHandle(self._ctx, slot)
            self._handles[slot] = handle
        return handle

    def _run_job(self, slot: int, record: JobRecord) -> str:
        """Run one job on this slot; returns ``"done"`` or ``"died"``."""
        handle = self._ensure_worker(slot)
        record.transition(JobState.RUNNING)
        record.attempts += 1
        record.started_at = self.clock()
        record.worker = slot
        self._notify(record)
        self._count("service.jobs_started")

        msg = {
            "id": record.id,
            "spec": record.spec.to_dict(),
            "job_dir": str(self.job_dir(record.id)),
        }
        if record.spec.reuse_positions_from is not None:
            if self.resolve_positions is None:
                record.error = "this pool cannot resolve reuse jobs"
                self._finish(record, JobState.FAILED)
                return "done"
            try:
                path, source = self.resolve_positions(
                    record.spec.reuse_positions_from
                )
            except Exception as exc:
                record.error = f"cannot reuse positions: {exc}"
                record.error_type = type(exc).__name__
                self._finish(record, JobState.FAILED)
                return "done"
            msg["reuse_positions_path"] = str(path)
            msg["reuse_source_job"] = source

        try:
            handle.conn.send(msg)
        except (OSError, BrokenPipeError):
            self._handle_death(slot, record)
            return "died"

        outcome = self._supervise(slot, handle, record)
        if outcome in ("died", "deadline"):
            self._handle_death(
                slot, record,
                cause="deadline" if outcome == "deadline" else "worker_death",
            )
            return "died"
        return "done"

    def _supervise(self, slot: int, handle: _WorkerHandle,
                   record: JobRecord) -> str:
        """Wait for the worker's reply under watchdog supervision.

        Returns ``"done"`` when a reply was handled (success or worker-
        reported failure, or cancellation), ``"died"`` when the worker
        process went away without replying, and ``"deadline"`` when the
        watchdog's deadline escalation killed it.
        """
        cfg = self.watchdog_config
        if record.spec.deadline_seconds is not None:
            cfg = replace(cfg, item_deadline=record.spec.deadline_seconds)
        run = _JobRun(
            f"job-{record.id}", self.journal_path(record.id),
            CancelToken(), handle.kill,
        )
        watchdog = Watchdog(run, cfg, metrics=self.metrics).start()
        try:
            while True:
                try:
                    if handle.conn.poll(0.05):
                        reply = handle.conn.recv()
                        self._handle_reply(handle, record, reply)
                        return "done"
                except (EOFError, OSError):
                    return "died"
                if not handle.alive():
                    # Killed (by the watchdog's abort, a test's SIGKILL,
                    # or the OS); there may still be a buffered reply.
                    try:
                        if handle.conn.poll(0):
                            reply = handle.conn.recv()
                            self._handle_reply(handle, record, reply)
                            return "done"
                    except (EOFError, OSError):
                        pass
                    return "died"
                if record.cancel_requested:
                    handle.kill()
                    handle.process.join(timeout=5.0)
                    self._finish(record, JobState.CANCELLED)
                    self._ensure_worker(slot)
                    return "done"
                if run.token.cancelled:
                    # Watchdog flagged the deadline; there is no
                    # cooperative path into another process, so the
                    # dispatcher is the cooperation: kill and requeue.
                    self._count("service.jobs_deadline_killed")
                    handle.kill()
                    handle.process.join(timeout=5.0)
                    return "deadline"
        finally:
            watchdog.stop()

    def _handle_reply(self, handle: _WorkerHandle, record: JobRecord,
                      reply: dict) -> None:
        self._consecutive_deaths[record.worker or 0] = 0
        if reply.get("ok"):
            summary = reply["summary"]
            handle.jobs_served = summary.get(
                "worker_jobs_served", handle.jobs_served + 1
            )
            record.result = summary
            self.poison.forget(record.id)
            self._finish(record, JobState.DONE)
            self._observe_success(record, summary)
        else:
            record.error = reply.get("error", "unknown worker error")
            record.error_type = reply.get(
                "error_type",
                (record.error or "").split(":", 1)[0] or None,
            )
            record.last_milestone = self._last_milestone(record.id)
            record.result = {"traceback": reply.get("traceback")}
            self._finish(record, JobState.FAILED)

    def _last_milestone(self, job_id: str) -> str | None:
        """Latest journal milestone the job durably reached, if any."""
        from repro.recovery.journal import load_journal

        try:
            state = load_journal(self.journal_path(job_id))
        except OSError:  # pragma: no cover - defensive
            return None
        if not state.milestones:
            return None
        return next(reversed(state.milestones))

    def _respawn(self, slot: int) -> None:
        """Replace a dead worker after the breaker's paced backoff.

        Capped exponential in the slot's consecutive-death count, with
        deterministic jitter -- the anti-hot-loop half of the crash-loop
        protection (the breaker's dispatch gate is the other half).
        """
        n = self._consecutive_deaths.get(slot, 0) + 1
        self._consecutive_deaths[slot] = n
        delay = self.breaker.respawn_backoff(n)
        if self.metrics is not None:
            self.metrics.histogram("service.respawn_backoff_seconds").observe(
                delay
            )
        if delay > 0:
            self._stopping.wait(delay)
        self._count("service.workers_respawned")
        self._handles[slot] = _WorkerHandle(self._ctx, slot)

    def _handle_death(self, slot: int, record: JobRecord,
                      cause: str = "worker_death") -> None:
        """Worker died without a reply: attribute, respawn (paced), then
        quarantine, requeue or fail.

        The respawn is unconditional: a SIGKILL surfaces as pipe EOF
        *before* ``Process.is_alive()`` flips false, so trusting
        liveness here would hand the requeued attempt straight back to
        the dying worker and burn its retry budget on the same death.
        What is *not* unconditional any more is the requeue: each death
        is attributed to the job that was running, and a job that has
        killed ``quarantine_threshold`` workers is quarantined with a
        post-mortem instead of being given another worker to kill.
        """
        self._count("service.worker_deaths")
        handle = self._handles[slot]
        exitcode = None
        if handle is not None:
            handle.kill()
            handle.process.join(timeout=5.0)
            exitcode = handle.process.exitcode
            handle.shutdown(timeout=5.0)
        sig = "deadline-kill" if cause == "deadline" else describe_exit(exitcode)
        self.breaker.record_death()
        is_poison = self.poison.record_death(
            record.id, record.attempts, sig, cause=cause
        )
        record.death_events.append({
            "attempt": record.attempts, "signal": sig,
            "cause": cause, "at": self.clock(),
        })
        self._respawn(slot)
        if record.cancel_requested:
            self.poison.forget(record.id)
            self._finish(record, JobState.CANCELLED)
            return
        if is_poison:
            self._quarantine(record)
            return
        if record.attempts <= record.spec.retry_budget:
            record.transition(JobState.QUEUED)
            record.worker = None
            self.queue.requeue(record)
            self._notify(record)
        else:
            record.error = (
                f"worker died ({sig}) and retry budget "
                f"({record.spec.retry_budget}) is exhausted after "
                f"{record.attempts} attempt(s)"
            )
            record.error_type = "WorkerDied"
            record.last_milestone = self._last_milestone(record.id)
            self._finish(record, JobState.FAILED)

    def _quarantine(self, record: JobRecord) -> None:
        """Terminal isolation for a poison job, with a post-mortem."""
        pm = self.poison.post_mortem(
            record.id, journal_path=self.journal_path(record.id)
        )
        record.post_mortem = pm
        record.last_milestone = pm.get("last_milestone")
        record.error = (
            f"quarantined: {pm['worker_deaths']} worker death(s) "
            f"attributed to this job (threshold "
            f"{self.poison.threshold}); signals {pm['death_signals']}"
        )
        record.error_type = "PoisonJobQuarantined"
        self._count("service.quarantined_jobs")
        if self.tracer is not None:
            t = self.tracer.now()
            self.tracer.record_span(
                f"quarantine:{record.id}", "service", t, t,
                args={"deaths": pm["worker_deaths"],
                      "signals": pm["death_signals"]},
            )
        self.poison.forget(record.id)
        self._finish(record, JobState.QUARANTINED)
        # The tenant's lane just lost its head-of-line job for good;
        # reset its rotation slot so it is not penalized for the time
        # its poison job monopolized a worker.
        self.queue.rebalance_rotation()

    # -- bookkeeping ---------------------------------------------------------

    def _finish(self, record: JobRecord, state: JobState) -> None:
        record.transition(state)
        record.finished_at = self.clock()
        self._count(f"service.jobs_{state.value}")
        self._notify(record)

    def _observe_success(self, record: JobRecord, summary: dict) -> None:
        if record.started_at is not None and record.finished_at is not None:
            self.queue.note_job_seconds(
                record.finished_at - record.started_at
            )
        if self.metrics is None:
            return
        self.metrics.histogram("service.job_seconds").observe(
            summary.get("job_seconds", 0.0)
        )
        self.metrics.histogram("service.phase1_seconds").observe(
            summary.get("phase1_seconds", 0.0)
        )
        self.metrics.histogram("service.phase2_seconds").observe(
            summary.get("phase2_seconds", 0.0)
        )
        pc = summary.get("plan_cache") or {}
        if pc.get("hits"):
            self.metrics.counter("service.plan_cache_hits").inc(pc["hits"])
        if pc.get("misses"):
            self.metrics.counter("service.plan_cache_misses").inc(pc["misses"])
        # Per-shape reuse counters: coarse-to-fine jobs surface their
        # coarse-shape plan rows here, so /metrics proves the coarse
        # plans are being reused across jobs, not re-planned.
        for row in pc.get("per_shape", []):
            shape = "x".join(str(n) for n in row["shape"])
            base = f"service.plan_cache.{row['kind']}.{shape}"
            if row.get("hits"):
                self.metrics.counter(f"{base}.hits").inc(row["hits"])
            if row.get("misses"):
                self.metrics.counter(f"{base}.misses").inc(row["misses"])
        if "coarse_hits" in summary:
            self.metrics.counter("service.coarse_hits").inc(
                summary["coarse_hits"]
            )
            self.metrics.counter("service.full_fallbacks").inc(
                summary.get("full_fallbacks", 0)
            )
        pc = summary.get("plan_cache", {})
        self.metrics.counter("service.plan_cache_hits").inc(
            int(pc.get("hits", 0))
        )
        self.metrics.counter("service.plan_cache_misses").inc(
            int(pc.get("misses", 0))
        )
        journal = summary.get("journal") or {}
        self.metrics.counter("service.pairs_resumed").inc(
            int(journal.get("resumed_pairs", 0))
        )
        self.metrics.counter("service.pairs_computed").inc(
            int(summary.get("pairs", 0))
        )

    def _notify(self, record: JobRecord) -> None:
        if self.on_transition is not None:
            self.on_transition(record)

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()
