"""MT-CPU: SPMD spatial domain decomposition (Section IV.A).

"We used the Simple-CPU implementation to develop a simple multi-threaded
implementation MT CPU.  This implementation uses spatial domain
decomposition and a thread-variant of the SPMD approach."

The grid is split into contiguous row bands, one per worker.  Each worker
runs the sequential algorithm over its band; the north pairs joining band
``k`` to band ``k-1`` are owned by band ``k``, whose worker needs the
boundary row of the band above.

Two modes govern how that boundary row is obtained:

``share_boundaries=True`` (default)
    A prefetch phase computes each interior boundary row's products
    (tile, forward spectrum, tile statistics) exactly once and shares
    them with both adjacent bands -- tiles and their products are
    read-only, so threads share them for free.  Every tile is then read
    and transformed exactly once and ``duplicated_boundary_reads`` is 0.

``share_boundaries=False`` (legacy SPMD)
    Each band re-reads and re-transforms the boundary row of the band
    above -- the duplicated work is classic SPMD simplicity tax, counted
    in ``boundary_refts``/``duplicated_boundary_reads``.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.displacement import DisplacementResult, Translation
from repro.core.tilestats import TileStats
from repro.grid.neighbors import Direction
from repro.impls.base import Implementation
from repro.io.dataset import TileDataset


def row_bands(rows: int, workers: int) -> list[tuple[int, int]]:
    """Split ``rows`` into ``<= workers`` contiguous ``[r0, r1)`` bands."""
    workers = min(workers, rows)
    base, extra = divmod(rows, workers)
    bands = []
    r0 = 0
    for k in range(workers):
        r1 = r0 + base + (1 if k < extra else 0)
        bands.append((r0, r1))
        r0 = r1
    return bands


class MtCpu(Implementation):
    """SPMD over row bands (best: 96 s at 16 threads on the paper's machine)."""

    name = "mt-cpu"

    def __init__(self, workers: int = 4, share_boundaries: bool = True,
                 **kw) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        super().__init__(**kw)
        self.workers = workers
        self.share_boundaries = share_boundaries

    def _run(self, dataset: TileDataset) -> tuple[DisplacementResult, dict]:
        disp = DisplacementResult.empty(dataset.rows, dataset.cols)
        stats_lock = threading.Lock()
        stats = {"reads": 0, "ffts": 0, "pairs": 0, "boundary_refts": 0}
        errors: list[BaseException] = []

        bands = row_bands(dataset.rows, self.workers)
        # One pair workspace per band: each band worker processes its pairs
        # sequentially, so one scratch set per worker suffices.
        arena = self._make_arena(dataset, count=len(bands))

        #: grid row -> shared entry list, for rows prefetched once and
        #: consumed by both adjacent bands (read-only after the barrier).
        prefetched: dict[int, list] = {}
        if self.share_boundaries and len(bands) > 1:
            self._prefetch_boundaries(
                dataset, bands, prefetched, stats, stats_lock, errors
            )
            if errors:
                raise errors[0]

        def band_worker(k: int, r0: int, r1: int) -> None:
            try:
                ws = arena.acquire() if arena is not None else None
                try:
                    self._band(
                        dataset, disp, r0, r1, stats, stats_lock, band=k,
                        workspace=ws, prefetched=prefetched,
                    )
                finally:
                    if arena is not None:
                        arena.release(ws)
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=band_worker, args=(k, *band), daemon=True)
            for k, band in enumerate(bands)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]
        stats["bands"] = len(bands)
        # Legacy mode re-reads each boundary tile once; sharing removes
        # every duplicate (satellite claim pinned by the architecture tests).
        stats["duplicated_boundary_reads"] = stats["boundary_refts"]
        disp.stats = stats
        return disp, stats

    def _prefetch_boundaries(
        self, dataset, bands, prefetched, stats, stats_lock, errors,
    ) -> None:
        """Phase A: build each interior boundary row's products once.

        The boundary rows are disjoint, so the prefetch threads share
        nothing but the (locked) stats dict; the subsequent band phase
        reads ``prefetched`` without locks -- it is frozen after the join
        barrier here.
        """
        def prefetch_worker(b: int, r: int) -> None:
            try:
                prefetched[r] = self._row_products(
                    dataset, r, stats, stats_lock,
                    track=f"mt-cpu/boundary-{b}",
                )
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(
                target=prefetch_worker, args=(b, r1 - 1), daemon=True
            )
            for b, (_, r1) in enumerate(bands[:-1])
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    def _row_products(self, dataset, r: int, stats, stats_lock,
                      track: str) -> list:
        """Load + transform one grid row; entries are ``None`` for skips."""
        local = {"reads": 0, "ffts": 0, "fft_copies_saved": 0}
        entries: list[tuple | None] = []
        for c in range(dataset.cols):
            with self.tracer.span("read+fft", track, key=f"({r},{c})"):
                tile = (
                    dataset.load(r, c)
                    if self.error_policy is None
                    else self._load_tile(dataset, r, c)
                )
                if tile is None:
                    entries.append(None)
                    continue
                fft = self._forward_spectrum(tile, stats=local)
                ts = TileStats(tile) if self.use_tile_stats else None
                local["reads"] += 1
                local["ffts"] += 1
                entries.append((tile, fft, ts))
        with stats_lock:
            for k, v in local.items():
                stats[k] = stats.get(k, 0) + v
        return entries

    def _band(
        self,
        dataset: TileDataset,
        disp: DisplacementResult,
        r0: int,
        r1: int,
        stats: dict,
        stats_lock: threading.Lock,
        band: int = 0,
        workspace=None,
        prefetched: dict | None = None,
    ) -> None:
        """Sequential pass over rows [r0, r1) with a 2-row sliding window.

        Row-major traversal within the band: computing row ``r`` needs only
        rows ``r-1`` and ``r`` live, so the band's working set is two rows
        of transforms (plus tile statistics) regardless of band height.
        Rows present in ``prefetched`` (the shared boundary rows) are
        consumed in place -- no read, no FFT, no duplicate accounting.
        """
        local = {"reads": 0, "ffts": 0, "pairs": 0, "boundary_refts": 0,
                 "fft_copies_saved": 0}
        prev_row: list[tuple | None] | None = None
        track = f"mt-cpu/band-{band}"

        start = r0 - 1 if r0 > 0 else r0  # include boundary row from the band above
        for r in range(start, r1):
            if prefetched is not None and r in prefetched:
                cur_row: list[tuple | None] = prefetched[r]
            else:
                cur_row = []
                for c in range(dataset.cols):
                    with self.tracer.span("read+fft", track, key=f"({r},{c})"):
                        tile = (
                            dataset.load(r, c)
                            if self.error_policy is None
                            else self._load_tile(dataset, r, c)
                        )
                        if tile is None:
                            # Tile dropped under the skip policy: its pairs
                            # are recorded as skipped and never computed.
                            cur_row.append(None)
                        else:
                            fft = self._forward_spectrum(tile, stats=local)
                            ts = (
                                TileStats(tile) if self.use_tile_stats else None
                            )
                            local["reads"] += 1
                            local["ffts"] += 1
                            if r == start and r0 > 0:
                                local["boundary_refts"] += 1
                            cur_row.append((tile, fft, ts))
            if r >= r0:
                for c in range(dataset.cols):
                    # West pair within this row (owned by this band).
                    if c > 0:
                        with self.tracer.span("pair", track, key=f"west({r},{c})"):
                            self._maybe_pair(
                                disp, Direction.WEST, r, c,
                                cur_row[c - 1], cur_row[c], local, workspace,
                            )
                    # North pair down from the previous row.
                    if prev_row is not None:
                        with self.tracer.span("pair", track, key=f"north({r},{c})"):
                            self._maybe_pair(
                                disp, Direction.NORTH, r, c,
                                prev_row[c], cur_row[c], local, workspace,
                            )
            prev_row = cur_row
        with stats_lock:
            for k, v in local.items():
                stats[k] = stats.get(k, 0) + v

    def _maybe_pair(self, disp, direction, r, c, first, second, local,
                    workspace=None) -> None:
        # Resume: each pair is owned by exactly one band, so serving it
        # from the journal here neither races nor double-records.
        journaled = self._journal_lookup(direction, r, c)
        if journaled is not None:
            disp.set(direction, r, c, journaled)
            local["resumed_pairs"] = local.get("resumed_pairs", 0) + 1
            return
        if first is None or second is None:
            self._record_skipped_pair(
                direction.name.lower(), r, c, reason="member tile unreadable"
            )
            return
        self._pair(disp, direction, r, c, first, second, local, workspace)

    def _pair(self, disp, direction, r, c, first, second, local,
              workspace=None) -> None:
        img_i, fft_i, stats_i = first
        img_j, fft_j, stats_j = second
        res = self._register_pair(
            img_i, img_j, fft_i=fft_i, fft_j=fft_j,
            stats_i=stats_i, stats_j=stats_j,
            workspace=workspace, stats=local,
        )
        t = Translation.from_pciam(res)
        disp.set(direction, r, c, t)
        self._journal_record(direction, r, c, t)
        local["pairs"] += 1
