"""Simple-CPU: the sequential reference implementation (Section IV.A).

Single-threaded, transform-caching, early-freeing, with a configurable
traversal order defaulting to the paper's chained diagonal.  This is a thin
adapter over :func:`repro.core.displacement.compute_grid_displacements`,
which *is* the reference algorithm; every other implementation's output is
compared against this one in the integration tests (as the paper's authors
validated their parallel versions against their sequential code).
"""

from __future__ import annotations

from repro.core.displacement import DisplacementResult, compute_grid_displacements
from repro.grid.traversal import Traversal
from repro.impls.base import Implementation
from repro.io.dataset import TileDataset


class SimpleCpu(Implementation):
    """Sequential CPU implementation (10.6 min on the paper's machine)."""

    name = "simple-cpu"

    def __init__(self, traversal: Traversal = Traversal.CHAINED_DIAGONAL, **kw) -> None:
        super().__init__(**kw)
        self.traversal = traversal

    def _run(self, dataset: TileDataset) -> tuple[DisplacementResult, dict]:
        disp = compute_grid_displacements(
            dataset.load,
            dataset.rows,
            dataset.cols,
            traversal=self.traversal,
            fft_shape=self.fft_shape,
            ccf_mode=self.ccf_mode,
            n_peaks=self.n_peaks,
            real_transforms=self.real_transforms,
            cache=self.cache,
            error_policy=self.error_policy,
            fault_report=self.fault_report,
            tracer=self.tracer,
            metrics=self.metrics,
            use_tile_stats=self.use_tile_stats,
            use_workspace=self.use_workspace,
            journal=self.journal,
            coarse=self.coarse,
        )
        return disp, dict(disp.stats)
