"""Pipelined-GPU: the 6-stage per-GPU pipeline of the paper's Fig. 8.

One execution pipeline per GPU; the grid is decomposed spatially into
contiguous column partitions, one per card.  Stages per pipeline (threads
in parentheses, queues are bounded monitor queues):

1. **read** (1): reads tiles of the partition in chained-diagonal order;
2. **copier** (1): acquires a transform-pool slot and copies the tile to
   device memory asynchronously on the copy stream;
3. **fft** (1): launches the forward cuFFT in-place on the slot (one at a
   time -- the paper's Fermi cuFFT concurrency note) on the FFT stream;
4. **bookkeeping** (1): the dependency state machine; advances pairs whose
   transforms are both resident, recycles slots whose reference count
   reaches zero;
5. **displacement** (1): NCC + inverse FFT + top-k reduce on the
   displacement stream; copies back only the O(k) reduction scalars; posts
   the memory-management entry back to the bookkeeper (the Fig. 8 feedback
   edge into Q34's upstream);
6. **CCF** (``ccf_workers`` threads): maps reduction indices to candidate
   translations and computes the cross-correlation factors on the CPU,
   producing the final (correlation, x, y) per pair.

Boundary ("ghost") columns are read and transformed by both adjacent
partitions -- the duplicated work is how the paper's spatial decomposition
avoids cross-GPU communication (peer-to-peer copies are listed as future
work).  All partitions share the output arrays; cells are disjoint.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.core.ccf import ccf_at
from repro.core.coarse import resolve_coarse_peaks
from repro.core.displacement import DisplacementResult, Translation
from repro.core.downsample import downsample
from repro.core.peak import peak_candidates, peak_magnitude_ratio
from repro.core.pciam import CcfMode, pciam
from repro.core.tilestats import TileStats, ccf_at_stats
from repro.fftlib.plans import spectrum_shape
from repro.fftlib.smooth import pad_to_shape
from repro.gpu.device import VirtualGpu
from repro.gpu.kernels import (
    fft2_kernel,
    ifft2_kernel,
    irfft2_kernel,
    ncc_kernel,
    reduce_max_kernel,
    rfft2_kernel,
)
from repro.grid.neighbors import Pair, grid_pairs
from repro.grid.tile_grid import GridPosition, TileGrid
from repro.grid.traversal import Traversal, traverse
from repro.impls.base import Implementation
from repro.io.dataset import TileDataset
from repro.pipeline.bookkeeper import PairBookkeeper
from repro.pipeline.graph import Pipeline
from repro.pipeline.stage import END_OF_STREAM


def column_partitions(cols: int, n: int) -> list[tuple[int, int]]:
    """Split ``cols`` into ``<= n`` contiguous ``[c0, c1)`` ranges."""
    n = min(n, cols)
    base, extra = divmod(cols, n)
    out, c0 = [], 0
    for k in range(n):
        c1 = c0 + base + (1 if k < extra else 0)
        out.append((c0, c1))
        c0 = c1
    return out


@dataclass
class _TileItem:
    pos: GridPosition
    pixels: np.ndarray


@dataclass
class _SlotItem:
    pos: GridPosition
    slot: int
    copied_at: float = 0.0  # virtual completion time of the H2D copy


@dataclass
class _FftDone:
    pos: GridPosition


@dataclass
class _PairDone:
    pair: Pair


@dataclass
class _CcfWork:
    pair: Pair
    peaks: list  # [(magnitude, flat_index), ...]


@dataclass
class _TileFailed:
    """Reader could not deliver a tile (retries exhausted, skip policy)."""

    pos: GridPosition


class PipelinedGpu(Implementation):
    """Multi-GPU pipelined implementation (49.7 s / 26.6 s in the paper)."""

    name = "pipelined-gpu"

    def __init__(
        self,
        devices: list[VirtualGpu] | int = 1,
        ccf_workers: int = 2,
        pool_size: int | None = None,
        traversal: Traversal = Traversal.CHAINED_DIAGONAL,
        queue_size: int = 8,
        pool_timeout: float = 60.0,
        p2p: bool = False,
        **kw,
    ) -> None:
        super().__init__(**kw)
        if isinstance(devices, int):
            if devices < 1:
                raise ValueError("need at least one GPU")
            devices = [VirtualGpu(device_id=i) for i in range(devices)]
        if not devices:
            raise ValueError("need at least one GPU")
        self.devices = devices
        self.ccf_workers = ccf_workers
        self.pool_size = pool_size
        self.traversal = traversal
        self.queue_size = queue_size
        self.pool_timeout = pool_timeout
        #: Peer-to-peer ghost exchange (the paper's Section VI enabler for
        #: scaling past 2 cards): instead of reading and re-transforming
        #: its western ghost column, each pipeline receives the owner
        #: card's transforms over p2p copies.  Ghost transforms live in
        #: dedicated (non-pooled) device buffers, freed by reference count.
        self.p2p = p2p

    # -- partitioning ---------------------------------------------------------

    def _partition(self, grid: TileGrid) -> list[dict]:
        """Per-GPU partition descriptors: pair subset + tile columns."""
        ranges = column_partitions(grid.cols, len(self.devices))
        all_pairs = list(grid_pairs(grid))
        parts = []
        for k, (c0, c1) in enumerate(ranges):
            pairs = {
                p
                for p in all_pairs
                if c0 <= p.second.col < c1
                # north pairs are fully inside one column range; west pairs
                # owned by the partition holding their *second* tile.
            }
            # With p2p the ghost column arrives over the link instead of
            # being read + transformed redundantly.
            tile_c0 = c0 if (self.p2p or k == 0) else c0 - 1
            export_col = c1 - 1 if (self.p2p and k + 1 < len(ranges)) else None
            parts.append({
                "cols": (tile_c0, c1),
                "pairs": frozenset(pairs),
                "export_col": export_col,
            })
        return parts

    # -- execution --------------------------------------------------------------

    def _run(self, dataset: TileDataset) -> tuple[DisplacementResult, dict]:
        rows, cols = dataset.rows, dataset.cols
        grid = TileGrid(rows, cols)
        disp = DisplacementResult.empty(rows, cols)
        parts = self._partition(grid)
        stats_lock = threading.Lock()
        stats = {"reads": 0, "ffts": 0, "pairs": 0, "gpus": len(parts)}

        if self.p2p and any(not part["pairs"] for part in parts) and len(parts) > 1:
            # A pairless partition never runs, so its neighbour would wait
            # forever for ghost transforms.  This only happens on degenerate
            # grids (e.g. 1-row grids split into 1-column partitions).
            raise ValueError(
                "p2p ghost exchange needs every partition to own pairs; "
                "use fewer GPUs for this grid shape"
            )
        # Ghost-import hooks: slot k holds partition k+1's import function;
        # partition k's FFT stage looks it up lazily (late binding is safe:
        # no stage starts before every pipeline is built).
        import_hooks: list = [None] * len(parts)
        pipelines: list[Pipeline] = []
        for index, (part, device) in enumerate(zip(parts, self.devices)):
            if part["pairs"]:
                pipe, import_ghost = self._build_pipeline(
                    dataset, grid, disp, part, device, stats, stats_lock,
                    index, import_hooks,
                )
                pipelines.append(pipe)
                if self.p2p and index > 0:
                    import_hooks[index - 1] = import_ghost

        if not pipelines:  # 1x1 grid: nothing to do
            disp.stats = stats
            return disp, stats

        for p in pipelines:
            p.start()
        for p in pipelines:
            p.join()

        for device in self.devices[: len(parts)]:
            with stats_lock:
                stats.setdefault("device_peak_bytes", 0)
                stats["device_peak_bytes"] = max(
                    stats["device_peak_bytes"], device.allocator.peak_bytes
                )
                stats.setdefault("d2h_bytes", 0)
                stats["d2h_bytes"] += device.profiler.bytes_copied("d2h")
        stats["streams_per_gpu"] = 3
        disp.stats = stats
        return disp, stats

    def _build_pipeline(
        self,
        dataset: TileDataset,
        grid: TileGrid,
        disp: DisplacementResult,
        part: dict,
        device: VirtualGpu,
        stats: dict,
        stats_lock: threading.Lock,
        index: int = 0,
        import_hooks: list | None = None,
    ) -> tuple[Pipeline, "object"]:
        c0, c1 = part["cols"]
        export_col = part.get("export_col")
        import_hooks = import_hooks if import_hooks is not None else []
        # Coarse mode shrinks every device surface (pool slots, ghost
        # buffers, NCC scratch, inverse scratch) to the coarse transform
        # shape -- factor^2 less device memory, H2D and p2p traffic.  The
        # host keeps full-resolution pixels + statistics for the CCF
        # stage's refinement probes and the full-PCIAM fallback.
        fft_shape = (
            self._pair_transform_shape(dataset)
            if self.coarse is not None
            else (tuple(self.fft_shape) if self.fft_shape else dataset.tile_shape)
        )
        bk = PairBookkeeper(grid, pairs=part["pairs"], metrics=self.metrics)
        my_tiles = bk.tiles

        real = self.real_transforms
        # Half-spectrum transforms shrink every pool buffer to (h, w//2+1)
        # complex values -- cuFFT R2C halves both footprint and FFT work.
        buf_shape = spectrum_shape(fft_shape) if real else fft_shape
        pool_size = self.pool_size or (2 * min(grid.rows, c1 - c0) + 4)
        pool = device.create_pool(pool_size, buf_shape)
        # Dedicated streams per GPU stage (copier / fft / displacement):
        # "one CUDA stream per GPU stage (a total of 3 for stages 2, 3 & 5)".
        stream_copy = device.create_stream()
        stream_fft = device.create_stream()
        stream_disp = device.create_stream()
        # Persistent scratch surface for NCC/inverse-FFT (the "backward
        # transform" buffer class of the paper's pool).  The c2r inverse
        # lands on a real spatial surface that cannot alias the
        # half-spectrum NCC buffer, so real mode carries one extra float64
        # scratch (still less memory than the single full complex surface).
        scratch = device.alloc(buf_shape, dtype=np.complex128)
        inv_scratch = device.alloc(fft_shape, dtype=np.float64) if real else None

        def real_slot_view(buf: np.ndarray) -> np.ndarray:
            # cuFFT's in-place R2C layout: the (h, w//2+1) complex slot's
            # memory holds the row-padded real input; the H2D copy and the
            # forward transform both address this float64 view, so no
            # separate spatial staging buffer is needed.
            return buf.view(np.float64)[:, : fft_shape[1]]

        pipe = Pipeline(f"pipelined-gpu-{device.device_id}",
                        tracer=self.tracer, metrics=self.metrics,
                        watchdog=self.watchdog)
        q01 = pipe.queue(maxsize=self.queue_size, name="read-copy")
        q12 = pipe.queue(maxsize=0, name="copy-fft")
        q23 = pipe.queue(maxsize=0, name="events")      # fft-done + pair-done
        q34 = pipe.queue(maxsize=0, name="ready-pairs")
        q45 = pipe.queue(maxsize=0, name="ccf-work")

        pixels: dict[GridPosition, np.ndarray] = {}
        tstats: dict[GridPosition, TileStats] = {}
        slots: dict[GridPosition, int] = {}
        # Ghost transforms received over p2p (dedicated device buffers,
        # keyed by grid position; disjoint from the pooled slots).
        ghost_arrays: dict[GridPosition, object] = {}
        # Virtual-clock completion time of each tile's forward transform
        # (CUDA-event semantics: the displacement stream must not start a
        # pair's NCC before both transforms exist on the device).
        fft_done_at: dict[GridPosition, float] = {}
        state_lock = threading.Lock()

        def fft_array(pos: GridPosition) -> np.ndarray:
            """Device transform for ``pos`` (caller holds state_lock)."""
            g = ghost_arrays.get(pos)
            return g.data if g is not None else pool.array(slots[pos])
        # Host pixels live until CCFs of all incident pairs are done.
        host_refcount = {pos: bk._refcount[pos] for pos in my_tiles}

        # Local traversal over the partition's tile columns.
        sub = TileGrid(grid.rows, c1 - c0)
        order = iter(
            [GridPosition(p.row, p.col + c0) for p in traverse(sub, self.traversal)]
        )

        def reader(_item, _ctx):
            try:
                pos = next(order)
            except StopIteration:
                return END_OF_STREAM
            if self.error_policy is None:
                tile = dataset.load(pos.row, pos.col)
            else:
                tile = self._load_tile(dataset, pos.row, pos.col)
                if tile is None:
                    q23.put(_TileFailed(pos))
                    # The eastern neighbour expects this tile's transform
                    # over p2p; tell it the tile is lost instead.
                    if export_col is not None and pos.col == export_col:
                        hook = (
                            import_hooks[index]
                            if index < len(import_hooks) else None
                        )
                        if hook is not None:
                            hook(pos, None, None, 0.0, None)
                    return None
            with stats_lock:
                stats["reads"] += 1
            return _TileItem(pos, tile)

        def copier(item: _TileItem, _ctx):
            slot = pool.acquire(timeout=self.pool_timeout)
            src = item.pixels
            if self.coarse is not None:
                src = downsample(src, self.coarse.factor)
            if src.shape != fft_shape:
                src = pad_to_shape(src, fft_shape)
            if real:
                # Copy the raw float64 tile (half the bytes of the complex
                # staging copy) into the slot's in-place R2C input view.
                ev = device.h2d(src, real_slot_view(pool.array(slot)), stream_copy)
            else:
                ev = device.h2d(src.astype(np.complex128), pool.array(slot), stream_copy)
            ts = TileStats(item.pixels) if self.use_tile_stats else None
            with state_lock:
                pixels[item.pos] = item.pixels
                if ts is not None:
                    tstats[item.pos] = ts
                slots[item.pos] = slot
            return _SlotItem(item.pos, slot, copied_at=ev.end)

        def fft_stage(item: _SlotItem, _ctx):
            buf = pool.array(item.slot)
            # Event wait: the forward transform cannot start before its
            # tile's H2D copy completed on the copy stream.
            if real:
                ev = rfft2_kernel(device, real_slot_view(buf), buf, stream_fft,
                                  not_before=item.copied_at)
            else:
                ev = fft2_kernel(device, buf, buf, stream_fft, not_before=item.copied_at)
            with state_lock:
                fft_done_at[item.pos] = ev.end
            with stats_lock:
                stats["ffts"] += 1
            # P2P export: push boundary-column transforms to the eastern
            # neighbour pipeline instead of letting it re-read + re-FFT.
            if export_col is not None and item.pos.col == export_col:
                hook = import_hooks[index] if index < len(import_hooks) else None
                if hook is not None:
                    with state_lock:
                        pix = pixels[item.pos]
                    hook(item.pos, device, buf, ev.end, pix)
            q23.put(_FftDone(item.pos))
            return None

        def import_ghost(pos, src_device, src_array, ready, pix):
            """Receive a neighbour card's transform (runs on its thread)."""
            if src_device is None:
                # The owner card lost this ghost tile; propagate the failure.
                q23.put(_TileFailed(pos))
                return None
            buf = device.alloc(buf_shape, dtype=np.complex128)
            ev = device.p2p_from(src_device, src_array, buf, stream_copy,
                                 not_before=ready)
            ts = TileStats(pix) if self.use_tile_stats else None
            with state_lock:
                pixels[pos] = pix
                if ts is not None:
                    tstats[pos] = ts
                ghost_arrays[pos] = buf
                fft_done_at[pos] = ev.end
            with stats_lock:
                stats["p2p_copies"] = stats.get("p2p_copies", 0) + 1
            q23.put(_FftDone(pos))
            return None

        def release_device_tile(pos: GridPosition) -> None:
            with state_lock:
                ghost = ghost_arrays.pop(pos, None)
            if ghost is not None:
                device.free(ghost)
            else:
                with state_lock:
                    pool.release(slots.pop(pos))

        def maybe_finish() -> None:
            if bk.all_pairs_completed():
                q34.close()
                q23.close()

        def bookkeeper(event, _ctx):
            if isinstance(event, _FftDone):
                for pair in bk.transform_ready(event.pos):
                    q34.put(pair)
                # Every incident pair cancelled by failed neighbours: the
                # slot will never be consumed by pair work.
                if bk.releasable(event.pos):
                    release_device_tile(event.pos)
                maybe_finish()
            elif isinstance(event, _PairDone):
                for pos in bk.pair_completed(event.pair):
                    release_device_tile(pos)
                maybe_finish()
            elif isinstance(event, _TileFailed):
                for pair in bk._incident(event.pos):
                    self._record_skipped_pair(
                        pair.direction.name.lower(),
                        pair.second.row,
                        pair.second.col,
                        reason=f"tile ({event.pos.row},{event.pos.col}) unreadable",
                    )
                for pos in bk.tile_failed(event.pos):
                    release_device_tile(pos)
                maybe_finish()
            else:  # pragma: no cover - defensive
                raise TypeError(f"unexpected event {event!r}")
            return None

        def displacement(pair: Pair, ctx):
            # Resume: a journaled pair skips the device work *and* the CCF
            # stage; its host/device bookkeeping is settled here so slot
            # recycling and pipeline completion accounting still flow.
            journaled = self._journal_lookup(
                pair.direction, pair.second.row, pair.second.col
            )
            if journaled is not None:
                disp.set(pair.direction, pair.second.row, pair.second.col,
                         journaled)
                with stats_lock:
                    stats["resumed_pairs"] = stats.get("resumed_pairs", 0) + 1
                with state_lock:
                    for pos in (pair.first, pair.second):
                        host_refcount[pos] -= 1
                        if host_refcount[pos] == 0:
                            pixels.pop(pos)
                            tstats.pop(pos, None)
                q23.put(_PairDone(pair))
                return None
            with state_lock:
                fft_i = fft_array(pair.first)
                fft_j = fft_array(pair.second)
                # Cross-stream dependency (CUDA event wait): the NCC cannot
                # start before both forward transforms completed on the FFT
                # stream's virtual timeline.
                ready = max(fft_done_at[pair.first], fft_done_at[pair.second])
            ncc_kernel(device, fft_i, fft_j, scratch.data, stream_disp,
                       not_before=ready)
            if real:
                irfft2_kernel(device, scratch.data, inv_scratch.data, stream_disp)
                surface = inv_scratch.data
            else:
                ifft2_kernel(device, scratch.data, scratch.data, stream_disp)
                surface = scratch.data
            k = (
                max(self.n_peaks, self.coarse.coarse_peaks)
                if self.coarse is not None else self.n_peaks
            )
            peaks, _ = reduce_max_kernel(device, surface, stream_disp, k=k)
            flat = np.array([v for p in peaks for v in p], dtype=np.float64)
            device.d2h(flat, stream_disp)  # O(k) scalars only
            ctx.emit(_CcfWork(pair, peaks))
            # Feedback entry for memory management (Fig. 8).
            q23.put(_PairDone(pair))
            return None

        extended = self.ccf_mode is CcfMode.EXTENDED

        def ccf_stage(work: _CcfWork, _ctx):
            pair = work.pair
            with state_lock:
                img_i = pixels[pair.first]
                img_j = pixels[pair.second]
                st_i = tstats.get(pair.first)
                st_j = tstats.get(pair.second)
            local_pair: dict = {}
            if self.coarse is not None:
                # Host-side coarse-to-fine resolution: contest + hill-climb
                # over the upscaled device peaks, full PCIAM (host FFTs
                # from the retained pixels) when the confidence gate
                # rejects the coarse evidence.
                cpeaks = [
                    (float(mag),
                     *map(int, np.unravel_index(int(flat_idx), fft_shape)))
                    for mag, flat_idx in work.peaks
                ]
                res = resolve_coarse_peaks(
                    cpeaks, fft_shape, config=self.coarse,
                    ccf_mode=self.ccf_mode,
                    img_i=img_i, img_j=img_j,
                    stats_i=st_i, stats_j=st_j,
                    use_tile_stats=self.use_tile_stats,
                    fallback=lambda: pciam(
                        img_i, img_j,
                        fft_shape=self.fft_shape,
                        ccf_mode=self.ccf_mode,
                        n_peaks=self.n_peaks,
                        real_transforms=self.real_transforms,
                        cache=self.cache,
                        stats_i=st_i, stats_j=st_j,
                        use_tile_stats=self.use_tile_stats,
                    ),
                    stats=local_pair,
                )
                t = Translation.from_pciam(res)
            else:
                best = (-np.inf, 0, 0)
                seen: set[tuple[int, int]] = set()
                for _mag, flat_idx in work.peaks:
                    py, px = np.unravel_index(int(flat_idx), fft_shape)
                    for tx, ty in peak_candidates(int(py), int(px), fft_shape, extended=extended):
                        if (tx, ty) in seen:
                            continue
                        seen.add((tx, ty))
                        if st_i is not None and st_j is not None:
                            c = ccf_at_stats(st_i, st_j, tx, ty)
                        else:
                            c = ccf_at(img_i, img_j, tx, ty)
                        if c > best[0]:
                            best = (c, tx, ty)
                corr, tx, ty = best
                ratio = peak_magnitude_ratio([m for m, _ in work.peaks])
                t = Translation(float(corr), int(tx), int(ty), peak_ratio=ratio)
            disp.set(pair.direction, pair.second.row, pair.second.col, t)
            self._journal_record(
                pair.direction, pair.second.row, pair.second.col, t
            )
            with stats_lock:
                stats["pairs"] += 1
                for key, v in local_pair.items():
                    stats[key] = stats.get(key, 0) + v
            with state_lock:
                for pos in (pair.first, pair.second):
                    host_refcount[pos] -= 1
                    if host_refcount[pos] == 0:
                        pixels.pop(pos)
                        tstats.pop(pos, None)
            return None

        pipe.stage("read", reader, workers=1, input=None, output=q01)
        pipe.stage("copier", copier, workers=1, input=q01, output=q12)
        pipe.stage("fft", fft_stage, workers=1, input=q12, output=None)
        pipe.stage("bookkeeping", bookkeeper, workers=1, input=q23, output=None)
        pipe.stage("displacement", displacement, workers=1, input=q34, output=q45)
        pipe.stage("ccf", ccf_stage, workers=self.ccf_workers, input=q45, output=None)
        return pipe, import_ghost
