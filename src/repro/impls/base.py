"""Common interface and result type for the Table II implementations."""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field

from repro.core.displacement import DisplacementResult
from repro.core.pciam import CcfMode
from repro.fftlib.plans import PlanCache
from repro.io.dataset import TileDataset


@dataclass
class RunResult:
    """Phase-1 output plus instrumentation from one implementation run."""

    implementation: str
    displacements: DisplacementResult
    wall_seconds: float
    stats: dict = field(default_factory=dict)


class Implementation(abc.ABC):
    """A phase-1 (relative displacement) implementation.

    Subclasses implement :meth:`_run`; the public :meth:`run` adds timing
    and completeness checking.  Configuration shared by all
    implementations: the peak-interpretation mode, the multi-peak count,
    and the optional padded FFT shape (``None`` = native tile size).
    """

    name: str = "base"

    def __init__(
        self,
        ccf_mode: CcfMode = CcfMode.EXTENDED,
        n_peaks: int = 2,
        fft_shape: tuple[int, int] | None = None,
        cache: PlanCache | None = None,
    ) -> None:
        self.ccf_mode = ccf_mode
        self.n_peaks = n_peaks
        self.fft_shape = fft_shape
        self.cache = cache if cache is not None else PlanCache()

    @abc.abstractmethod
    def _run(self, dataset: TileDataset) -> tuple[DisplacementResult, dict]:
        """Compute all pairwise displacements; return (result, stats)."""

    def run(self, dataset: TileDataset) -> RunResult:
        t0 = time.perf_counter()
        disp, stats = self._run(dataset)
        wall = time.perf_counter() - t0
        if not disp.is_complete():
            raise RuntimeError(
                f"{self.name}: incomplete phase 1 "
                f"({disp.pair_count()} of {2*disp.rows*disp.cols - disp.rows - disp.cols} pairs)"
            )
        return RunResult(
            implementation=self.name,
            displacements=disp,
            wall_seconds=wall,
            stats=stats,
        )
