"""Common interface and result type for the Table II implementations."""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.coarse import (
    CoarseConfig,
    coarse_forward_fft,
    coarse_pciam,
    coarse_transform_shape,
)
from repro.core.displacement import DisplacementResult
from repro.core.pciam import CcfMode, forward_fft, pciam
from repro.fftlib.plans import PlanCache
from repro.io.dataset import TileDataset
from repro.memmodel.workspace import WorkspaceArena
from repro.observe.tracer import NULL_TRACER
from repro.pipeline.stage import ErrorPolicy, run_with_retries


@dataclass
class RunResult:
    """Phase-1 output plus instrumentation from one implementation run."""

    implementation: str
    displacements: DisplacementResult
    wall_seconds: float
    stats: dict = field(default_factory=dict)


class Implementation(abc.ABC):
    """A phase-1 (relative displacement) implementation.

    Subclasses implement :meth:`_run`; the public :meth:`run` adds timing
    and completeness checking.  Configuration shared by all
    implementations: the peak-interpretation mode, the multi-peak count,
    and the optional padded FFT shape (``None`` = native tile size).

    Fault tolerance: with an ``error_policy`` (plus, usually, a
    :class:`~repro.faults.report.FaultReport`), tile reads go through
    :meth:`_load_tile`, which retries per the policy and -- under a skip
    disposition -- returns ``None`` for a tile whose retries are
    exhausted.  Subclasses that support degradation treat a ``None`` tile
    as failed and skip its pairs; :meth:`run` then accepts the resulting
    incomplete grid.  Without a policy every implementation keeps the
    strict legacy contract: first error propagates raw.
    """

    name: str = "base"

    def __init__(
        self,
        ccf_mode: CcfMode = CcfMode.EXTENDED,
        n_peaks: int = 2,
        fft_shape: tuple[int, int] | None = None,
        cache: PlanCache | None = None,
        real_transforms: bool = True,
        use_tile_stats: bool = True,
        use_workspace: bool = True,
        error_policy: ErrorPolicy | None = None,
        fault_report=None,
        tracer=None,
        metrics=None,
        journal=None,
        watchdog=None,
        coarse: CoarseConfig | None = None,
    ) -> None:
        self.ccf_mode = ccf_mode
        self.n_peaks = n_peaks
        self.fft_shape = fft_shape
        self.cache = cache if cache is not None else PlanCache()
        #: Hot-path knobs shared by every implementation (docs/PERFORMANCE.md):
        #: half-spectrum (R2C) transforms, O(1)-statistics CCF via per-tile
        #: summed-area tables, and reusable per-worker pair workspaces.  All
        #: default on; each has an off switch so the benchmark can isolate it.
        self.real_transforms = real_transforms
        self.use_tile_stats = use_tile_stats
        self.use_workspace = use_workspace
        self.error_policy = error_policy
        self.fault_report = fault_report
        #: Observability hooks shared by every implementation: a
        #: :class:`~repro.observe.tracer.Tracer` records per-stage spans
        #: (the pipelined implementations pass it straight into their
        #: :class:`~repro.pipeline.graph.Pipeline`), a
        #: :class:`~repro.observe.metrics.MetricsRegistry` aggregates
        #: counters/latency histograms.  Both default to disabled no-ops.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        #: Durability hooks (docs/ROBUSTNESS.md): ``journal`` is a
        #: :class:`~repro.recovery.journal.RunJournal` -- journaled pairs
        #: are served from it (counted separately from computed pairs) and
        #: fresh pairs are made durable as they complete; ``watchdog`` is
        #: a :class:`~repro.recovery.watchdog.WatchdogConfig` the
        #: pipelined implementations hand to their
        #: :class:`~repro.pipeline.graph.Pipeline` for stall supervision
        #: (the sequential implementations ignore it -- a single thread
        #: cannot be supervised cooperatively by itself).
        self.journal = journal
        self.watchdog = watchdog
        #: Coarse-to-fine registration (docs/PERFORMANCE.md): when set, the
        #: per-tile product becomes the downsampled coarse spectrum, pairs
        #: go through :func:`~repro.core.coarse.coarse_pciam`, and the pair
        #: workspaces shrink to the coarse transform shape.  ``None`` (the
        #: default) keeps every implementation byte-identical to the
        #: single-pass full-resolution path.
        self.coarse = coarse

    @abc.abstractmethod
    def _run(self, dataset: TileDataset) -> tuple[DisplacementResult, dict]:
        """Compute all pairwise displacements; return (result, stats)."""

    def _transform_shape(self, dataset: TileDataset) -> tuple[int, int]:
        """The spatial transform shape this run uses (padded or native)."""
        if self.fft_shape is not None:
            return tuple(self.fft_shape)
        return tuple(dataset.tile_shape)

    def _pair_transform_shape(self, dataset: TileDataset) -> tuple[int, int]:
        """The shape pair NCC/inverse scratch is sized for.

        Coarse mode shrinks the per-pair transforms to the downsampled
        shape (the full-resolution refinement probes need no FFT scratch).
        """
        shape = self._transform_shape(dataset)
        if self.coarse is not None:
            return coarse_transform_shape(shape, self.coarse.factor)
        return shape

    def _make_arena(self, dataset: TileDataset, count: int):
        """Per-worker pair-workspace arena, or ``None`` when disabled."""
        if not self.use_workspace:
            return None
        return WorkspaceArena(
            self._pair_transform_shape(dataset),
            real=self.real_transforms,
            count=count,
        )

    def _forward_spectrum(self, tile, stats: dict | None = None,
                          cache: PlanCache | None = None):
        """Per-tile forward spectrum in the current mode.

        Full-resolution R2C/C2C in single-pass mode; block-mean
        downsample + coarse-shape transform in coarse mode.  Either way
        this is the product computed once per tile and shared across the
        tile's incident pairs.
        """
        cache = self.cache if cache is None else cache
        if self.coarse is not None:
            return coarse_forward_fft(
                tile, self.coarse.factor, self.fft_shape, cache,
                real=self.real_transforms, stats=stats,
            )
        return forward_fft(
            tile, self.fft_shape, cache,
            real=self.real_transforms, stats=stats,
        )

    def _register_pair(self, img_i, img_j, fft_i=None, fft_j=None,
                       stats_i=None, stats_j=None, workspace=None,
                       stats: dict | None = None,
                       cache: PlanCache | None = None):
        """One pairwise registration in the current mode.

        Single-pass mode delegates to :func:`~repro.core.pciam.pciam`
        with the precomputed full-resolution spectra; coarse mode to
        :func:`~repro.core.coarse.coarse_pciam` with the precomputed
        *coarse* spectra (``stats`` then receives the ``coarse_hits`` /
        ``full_fallbacks`` counters, and the result carries provenance).
        """
        cache = self.cache if cache is None else cache
        if self.coarse is not None:
            return coarse_pciam(
                img_i, img_j, self.coarse,
                cfft_i=fft_i, cfft_j=fft_j,
                fft_shape=self.fft_shape,
                ccf_mode=self.ccf_mode,
                n_peaks=self.n_peaks,
                real_transforms=self.real_transforms,
                cache=cache,
                stats_i=stats_i, stats_j=stats_j,
                workspace=workspace,
                use_tile_stats=self.use_tile_stats,
                stats=stats,
            )
        return pciam(
            img_i, img_j,
            fft_i=fft_i, fft_j=fft_j,
            fft_shape=self.fft_shape,
            ccf_mode=self.ccf_mode,
            n_peaks=self.n_peaks,
            real_transforms=self.real_transforms,
            cache=cache,
            stats_i=stats_i, stats_j=stats_j,
            workspace=workspace,
            use_tile_stats=self.use_tile_stats,
        )

    @property
    def _skip_on_error(self) -> bool:
        return (
            self.error_policy is not None
            and self.error_policy.on_exhausted in ("skip", "degrade")
        )

    def _load_tile(self, dataset: TileDataset, row: int, col: int,
                   dtype=np.float64):
        """Read one tile under the error policy.

        No policy: raw ``dataset.load`` (legacy contract -- the original
        exception propagates).  With a policy: retries are applied and
        recorded; exhaustion either re-raises the last error (abort) or
        records a skipped tile and returns ``None`` (skip/degrade).
        """
        if self.error_policy is None:
            return dataset.load(row, col, dtype=dtype)

        def on_retry(attempt: int, exc: BaseException) -> None:
            if self.fault_report is not None:
                self.fault_report.record_retry(
                    "read", (row, col), attempt, exc
                )
            if self.metrics is not None:
                self.metrics.counter("read.retries").inc()

        try:
            value, _ = run_with_retries(
                lambda: dataset.load(row, col, dtype=dtype),
                self.error_policy,
                key=(row, col),
                on_retry=on_retry,
            )
            return value
        except Exception as exc:
            if not self._skip_on_error:
                raise
            if self.fault_report is not None:
                self.fault_report.record_skipped_tile((row, col), exc)
            if self.metrics is not None:
                self.metrics.counter("read.skipped_tiles").inc()
            return None

    def _journal_lookup(self, direction, row: int, col: int):
        """Journaled translation for a pair, or ``None`` (no journal/miss).

        ``direction`` is a :class:`~repro.grid.neighbors.Direction` (or
        its string value); ``(row, col)`` is the pair's *second* (owning)
        tile, matching ``DisplacementResult.set``.
        """
        if self.journal is None:
            return None
        return self.journal.lookup(
            getattr(direction, "value", direction), row, col
        )

    def _journal_record(self, direction, row: int, col: int,
                        translation) -> None:
        """Make a freshly computed pair durable (no-op without a journal).

        Called by the owning worker right after ``disp.set``; the journal
        handle is thread-safe, so concurrent workers may record freely.
        """
        if self.journal is not None:
            self.journal.record_pair(
                getattr(direction, "value", direction), row, col, translation
            )

    def _record_skipped_pair(self, direction: str, row: int, col: int,
                             reason: str = "") -> None:
        if self.fault_report is not None:
            self.fault_report.record_skipped_pair(direction, row, col, reason)
        if self.metrics is not None:
            self.metrics.counter("pairs.skipped").inc()

    def run(self, dataset: TileDataset) -> RunResult:
        t0 = time.perf_counter()
        with self.tracer.span(f"phase1:{self.name}", "phase1"):
            disp, stats = self._run(dataset)
        wall = time.perf_counter() - t0
        if self.metrics is not None:
            self.metrics.histogram(f"impl.{self.name}.wall_seconds").observe(wall)
        if not disp.is_complete():
            if not self._skip_on_error:
                raise RuntimeError(
                    f"{self.name}: incomplete phase 1 "
                    f"({disp.pair_count()} of {2*disp.rows*disp.cols - disp.rows - disp.cols} pairs)"
                )
            stats = dict(stats)
            stats["skipped_pairs"] = len(disp.missing_pairs())
            if self.fault_report is not None:
                stats["fault_report"] = self.fault_report
        if self.journal is not None:
            stats = dict(stats)
            stats["journal"] = self.journal.summary()
        return RunResult(
            implementation=self.name,
            displacements=disp,
            wall_seconds=wall,
            stats=stats,
        )
