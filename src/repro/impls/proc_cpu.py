"""Proc-CPU: SPMD row bands over processes (GIL-free phase 1).

Same spatial decomposition as :class:`~repro.impls.mt_cpu.MtCpu`, but the
band workers are OS *processes*, so the non-numpy half of the phase-1
loop (peak contests, CCF dispatch, bookkeeping) runs truly concurrently
instead of serializing on the GIL.  The pieces that make that practical:

- **fork + shared memory, zero pickling of pixels.**  Workers are forked
  from the parent after the run context (dataset handle, configuration,
  shared slabs) is staged in a module global, so they inherit everything
  by address; only the small per-band result records travel back through
  the executor.  Cross-band products move through a
  :class:`~repro.memmodel.shm.ShmArena` whose slabs are ``MAP_SHARED``,
  visible to every process.

- **two-phase boundary exchange.**  The north pairs joining band ``k`` to
  band ``k-1`` need the boundary row's tiles/spectra/statistics in *both*
  bands.  Phase A loads each interior boundary row exactly once and
  publishes tile + forward spectrum + summed-area table into the arena;
  Phase B band workers consume the slab views from both sides.  Every
  tile in the grid is therefore read and transformed exactly once --
  ``duplicated_boundary_reads`` is 0 by construction (MT-CPU's
  ``boundary_refts`` waste is the thing this removes).

- **batched forward FFTs.**  Row tiles are transformed ``fft_batch`` at a
  time through :func:`repro.core.pciam.forward_fft_batch` -- one backend
  call per stack amortizes per-transform dispatch overhead; slices are
  bit-identical to the per-tile transform.

- **deterministic merge.**  Each pair is owned by exactly one band;
  workers return their displacement records and the parent folds them in
  band order, so positions are bit-identical to ``simple-cpu``.

- **durability from inside workers.**  Each worker appends completed
  pairs to the run journal through its own
  :class:`~repro.recovery.journal.JournalAppender` (``O_APPEND`` writes
  interleave atomically), so a SIGKILL of the whole process tree loses at
  most in-flight pairs, exactly like the threaded backends.  Resume reads
  come from the fork-inherited journal state (read-only in workers).

Workers watch their parent's pid and ``os._exit`` when it changes
(SIGKILL of the parent must not leave orphans holding slab mappings), and
the arena unlinks its segments on normal exit *and* via the creator's
``resource_tracker`` after a kill.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import multiprocessing as mp

import numpy as np

from repro.core.displacement import DisplacementResult, Translation
from repro.core.downsample import downsample
from repro.core.pciam import forward_fft_batch
from repro.core.tilestats import TileStats
from repro.fftlib.plans import TransformKind, spectrum_shape
from repro.grid.neighbors import Direction
from repro.impls.base import Implementation
from repro.impls.mt_cpu import row_bands
from repro.io.dataset import TileDataset
from repro.memmodel.shm import ShmArena
from repro.observe.tracer import Tracer
from repro.pipeline.stage import run_with_retries
from repro.recovery.journal import JournalAppender


#: Run context staged by the parent immediately before the executor's
#: workers fork, and inherited by them by address.  Exactly one proc-cpu
#: run may be live per process at a time (runs are sequential in every
#: caller; a second concurrent run would need a keyed registry here).
_CTX: "_RunCtx | None" = None

#: Worker-process journal appender, opened lazily on first record.
_APPENDER: JournalAppender | None = None


@dataclass
class _RunCtx:
    """Everything a forked band worker needs, reachable by inheritance."""

    impl: "ProcCpu"
    dataset: TileDataset
    bands: list[tuple[int, int]]
    #: Slab views indexed ``b * cols + c`` for interior boundary ``b``
    #: (the last row of band ``b``); ``None`` when the grid has one band.
    tiles: np.ndarray | None
    spectra: np.ndarray | None
    tables: np.ndarray | None
    #: ``(n_boundaries, cols)`` int8: 1 = products published, 0 = tile
    #: skipped (or Phase A not run -- never observed by Phase B).
    mask: np.ndarray | None
    journal_spec: tuple[str, bool] | None
    trace_enabled: bool


@dataclass
class _TaskOutcome:
    """What one worker task ships back to the parent for merging."""

    #: ``(direction_value, row, col, Translation)`` in traversal order.
    pairs: list = field(default_factory=list)
    resumed: int = 0
    skipped_tiles: list = field(default_factory=list)   # (r, c, errmsg)
    skipped_pairs: list = field(default_factory=list)   # (direction, r, c, reason)
    retries: list = field(default_factory=list)         # (r, c, attempt, errmsg)
    stats: dict = field(default_factory=dict)
    spans: list = field(default_factory=list)
    tracer_t0: float = 0.0


def _watch_parent(ppid: int) -> None:  # pragma: no cover - daemon loop
    """Exit hard if the parent dies: orphaned band workers must not keep
    slab mappings (or executor queues) alive after a SIGKILL."""
    while True:
        if os.getppid() != ppid:
            os._exit(1)
        time.sleep(0.5)


def _worker_init(ppid: int) -> None:
    """Per-process setup: orphan watch + plan-cache warmup."""
    global _APPENDER
    _APPENDER = None
    threading.Thread(target=_watch_parent, args=(ppid,), daemon=True).start()
    ctx = _CTX
    if ctx is None:  # pragma: no cover - defensive
        return
    impl = ctx.impl
    # Warm the forward/inverse plans once per worker so the first pair in
    # every band pays no planning cost (the forked cache already holds
    # plans the parent created, but a fresh parent cache arrives cold).
    # Coarse mode warms the coarse shapes (the per-pair hot path) *and*
    # the full-resolution shapes (the fallback path) -- the PlanCache is
    # keyed on (kind, shape), so the two never collide.
    shapes = [impl._transform_shape(ctx.dataset)]
    if impl.coarse is not None:
        shapes.insert(0, impl._pair_transform_shape(ctx.dataset))
    for shape in shapes:
        if impl.real_transforms:
            impl.cache.plan(shape, TransformKind.R2C, allow_padding=False)
            impl.cache.plan(shape, TransformKind.C2R, allow_padding=False)
        else:
            impl.cache.plan(shape, TransformKind.C2C_FORWARD, allow_padding=False)
            impl.cache.plan(shape, TransformKind.C2C_INVERSE, allow_padding=False)


def _journal_appender() -> JournalAppender | None:
    global _APPENDER
    ctx = _CTX
    if ctx is None or ctx.journal_spec is None:
        return None
    if _APPENDER is None:
        path, fsync = ctx.journal_spec
        _APPENDER = JournalAppender(path, fsync=fsync)
    return _APPENDER


def _journal_lookup(impl, direction: Direction, r: int, c: int):
    """Read-only resume lookup against the fork-inherited journal state.

    Deliberately bypasses ``RunJournal.lookup``: its hit accounting would
    land in the worker's copy and be lost.  Hits are counted in the
    outcome and folded into the parent journal's counters at merge time.
    """
    journal = impl.journal
    if journal is None:
        return None
    rec = journal.state.pairs.get((direction.value, int(r), int(c)))
    if rec is None:
        return None
    return Translation(
        correlation=rec["correlation"], tx=rec["tx"], ty=rec["ty"],
        tx_f=rec["tx_f"], ty_f=rec["ty_f"],
        peak_ratio=rec.get("peak_ratio"),
        provenance=rec.get("provenance"),
    )


def _load_tile(impl, dataset, r: int, c: int, out: _TaskOutcome):
    """Tile read under the error policy, with worker-local accounting.

    Mirrors :meth:`Implementation._load_tile` but collects retry/skip
    records in the outcome (the forked ``fault_report``/``metrics``
    copies would swallow them) and journals skips through the worker's
    appender so they are durable without the parent.
    """
    if impl.error_policy is None:
        return dataset.load(r, c)

    def on_retry(attempt: int, exc: BaseException) -> None:
        out.retries.append((r, c, attempt, f"{type(exc).__name__}: {exc}"))

    try:
        value, _ = run_with_retries(
            lambda: dataset.load(r, c),
            impl.error_policy,
            key=(r, c),
            on_retry=on_retry,
        )
        return value
    except Exception as exc:
        if not impl._skip_on_error:
            raise
        out.skipped_tiles.append((r, c, f"{type(exc).__name__}: {exc}"))
        ap = _journal_appender()
        if ap is not None:
            ap.record_skipped_tile(r, c, str(exc))
        return None


def _row_products(
    impl, dataset, r: int, cols: int, out: _TaskOutcome, local: dict,
    tracer, track: str,
):
    """Load + transform one grid row, ``fft_batch`` tiles per FFT call.

    Returns ``[(tile, fft, stats) | None] * cols`` -- the per-tile entry
    triple every band loop consumes.  Batch slices are bit-identical to
    per-tile transforms, so batching never changes a displacement.
    """
    batch = max(1, impl.fft_batch)
    entries: list[tuple | None] = [None] * cols
    for c0 in range(0, cols, batch):
        chunk = list(range(c0, min(c0 + batch, cols)))
        with tracer.span("read", track, key=f"row{r}[{chunk[0]}:{chunk[-1] + 1}]"):
            tiles = []
            for c in chunk:
                tile = _load_tile(impl, dataset, r, c, out)
                tiles.append(tile)
                if tile is not None:
                    local["reads"] += 1
        live = [(c, t) for c, t in zip(chunk, tiles) if t is not None]
        if not live:
            continue
        with tracer.span("fft", track, key=f"row{r}x{len(live)}"):
            if impl.coarse is not None:
                # Batched *coarse* FFTs: downsample each tile, then one
                # backend call transforms the whole stack at the coarse
                # shape (slices stay bit-identical to per-tile
                # coarse_forward_fft).
                inputs = [
                    downsample(t, impl.coarse.factor) for _, t in live
                ]
                batch_shape = (
                    None if impl.fft_shape is None
                    else impl._pair_transform_shape(dataset)
                )
            else:
                inputs = [t for _, t in live]
                batch_shape = impl.fft_shape
            ffts = forward_fft_batch(
                inputs, batch_shape, impl.cache,
                real=impl.real_transforms, stats=local,
            )
            local["ffts"] += len(live)
        for (c, tile), fft in zip(live, ffts):
            ts = TileStats(tile) if impl.use_tile_stats else None
            entries[c] = (tile, fft, ts)
    return entries


def _slab_entry(ctx: _RunCtx, b: int, c: int):
    """Entry triple for boundary ``b``, column ``c`` from the shared slabs.

    ``TileStats`` is rebuilt around zero-copy slab views: the summed-area
    table is adopted as published, and the mean-shifted pixels recompute
    from the shared raw tile exactly as the original constructor did, so
    every downstream value is bit-identical.
    """
    if ctx.mask is None or not ctx.mask[b, c]:
        return None
    cols = ctx.dataset.cols
    slot = b * cols + c
    tile = ctx.tiles[slot]
    fft = ctx.spectra[slot]
    if ctx.impl.use_tile_stats:
        ts = TileStats.from_parts(tile - tile.mean(), ctx.tables[slot])
    else:
        ts = None
    return (tile, fft, ts)


def _boundary_task(b: int) -> _TaskOutcome:
    """Phase A: publish boundary row ``b`` (last row of band ``b``)."""
    ctx = _CTX
    impl, dataset = ctx.impl, ctx.dataset
    out = _TaskOutcome()
    tracer = Tracer(enabled=ctx.trace_enabled)
    out.tracer_t0 = tracer._t0
    track = f"proc-cpu/boundary-{b}"
    local = {"reads": 0, "ffts": 0}
    r = ctx.bands[b][1] - 1
    cols = dataset.cols
    entries = _row_products(impl, dataset, r, cols, out, local, tracer, track)
    for c, entry in enumerate(entries):
        if entry is None:
            continue
        tile, fft, ts = entry
        slot = b * cols + c
        ctx.tiles[slot][: tile.shape[0], : tile.shape[1]] = tile
        ctx.spectra[slot] = fft
        if ts is not None:
            ctx.tables[slot] = ts.table
        ctx.mask[b, c] = 1
    out.stats = local
    out.spans = tracer.spans
    return out


def _band_task(k: int) -> _TaskOutcome:
    """Phase B: all pairs owned by band ``k`` (rows ``[r0, r1)``).

    Traversal and pair ownership match :class:`MtCpu` exactly -- west
    pairs within rows ``>= r0``, north pairs down into the band -- except
    that boundary rows (the row above, and this band's own last row when
    it is interior) come from the Phase A slabs instead of fresh reads.
    """
    ctx = _CTX
    impl, dataset = ctx.impl, ctx.dataset
    r0, r1 = ctx.bands[k]
    cols = dataset.cols
    out = _TaskOutcome()
    tracer = Tracer(enabled=ctx.trace_enabled)
    out.tracer_t0 = tracer._t0
    track = f"proc-cpu/band-{k}"
    local = {"reads": 0, "ffts": 0, "pairs": 0}
    n_bands = len(ctx.bands)
    workspace = None
    if impl.use_workspace:
        workspace = impl._make_arena(dataset, count=1).acquire()

    prev_row: list[tuple | None] | None = None
    start = r0 - 1 if r0 > 0 else r0
    for r in range(start, r1):
        if r == r0 - 1:
            # Boundary row from the band above: published by Phase A.
            cur_row = [_slab_entry(ctx, k - 1, c) for c in range(cols)]
        elif r == r1 - 1 and k < n_bands - 1:
            # This band's own last row is the next band's boundary row;
            # Phase A already read + transformed it.
            cur_row = [_slab_entry(ctx, k, c) for c in range(cols)]
        else:
            cur_row = _row_products(
                impl, dataset, r, cols, out, local, tracer, track
            )
        if r >= r0:
            for c in range(cols):
                if c > 0:
                    _pair(impl, out, Direction.WEST, r, c,
                          cur_row[c - 1], cur_row[c], local, workspace,
                          tracer, track)
                if prev_row is not None:
                    _pair(impl, out, Direction.NORTH, r, c,
                          prev_row[c], cur_row[c], local, workspace,
                          tracer, track)
        prev_row = cur_row
    out.stats = local
    out.spans = tracer.spans
    return out


def _pair(impl, out: _TaskOutcome, direction: Direction, r: int, c: int,
          first, second, local: dict, workspace, tracer, track: str) -> None:
    journaled = _journal_lookup(impl, direction, r, c)
    if journaled is not None:
        out.pairs.append((direction.value, r, c, journaled))
        out.resumed += 1
        return
    if first is None or second is None:
        out.skipped_pairs.append(
            (direction.name.lower(), r, c, "member tile unreadable")
        )
        return
    img_i, fft_i, stats_i = first
    img_j, fft_j, stats_j = second
    with tracer.span("pair", track, key=f"{direction.name.lower()}({r},{c})"):
        res = impl._register_pair(
            img_i, img_j, fft_i=fft_i, fft_j=fft_j,
            stats_i=stats_i, stats_j=stats_j,
            workspace=workspace, stats=local,
        )
    t = Translation.from_pciam(res)
    ap = _journal_appender()
    if ap is not None:
        ap.record_pair(direction.value, r, c, t)
    out.pairs.append((direction.value, r, c, t))
    local["pairs"] += 1


class ProcCpu(Implementation):
    """SPMD row bands over a fork-based process pool.

    ``workers`` caps the band count (like MT-CPU); ``fft_batch`` sets how
    many row tiles share one batched forward transform (1 disables
    batching).  Positions are bit-identical to ``simple-cpu`` in every
    configuration.
    """

    name = "proc-cpu"

    def __init__(self, workers: int = 4, fft_batch: int = 4, **kw) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        if fft_batch < 1:
            raise ValueError(f"fft_batch must be >= 1, got {fft_batch}")
        super().__init__(**kw)
        self.workers = workers
        self.fft_batch = fft_batch

    def _run(self, dataset: TileDataset) -> tuple[DisplacementResult, dict]:
        global _CTX, _APPENDER
        bands = row_bands(dataset.rows, self.workers)
        n_boundaries = len(bands) - 1
        use_pool = n_boundaries > 0 and "fork" in mp.get_all_start_methods()

        tile_shape = tuple(dataset.tile_shape)
        # In coarse mode the published per-tile spectrum is coarse-shaped
        # (the full-resolution spectrum is never computed up front).
        fshape = self._pair_transform_shape(dataset)
        sshape = spectrum_shape(fshape) if self.real_transforms else fshape
        slots = n_boundaries * dataset.cols

        arena = None
        tiles = spectra = tables = mask = None
        if n_boundaries:
            if use_pool:
                # MAP_SHARED slabs: Phase A writes in workers must be
                # visible to every Phase B worker.
                arena = ShmArena()
                tiles = arena.slab("tiles", slots, tile_shape, np.float64).array
                spectra = arena.slab("spectra", slots, sshape, np.complex128).array
                if self.use_tile_stats:
                    tables = arena.slab(
                        "tables", slots,
                        (tile_shape[0] + 1, tile_shape[1] + 1), np.complex128,
                    ).array
                mask = arena.slab(
                    "mask", n_boundaries, (dataset.cols,), np.int8
                ).array
            else:  # pragma: no cover - non-fork platforms
                tiles = np.zeros((slots, *tile_shape))
                spectra = np.zeros((slots, *sshape), dtype=np.complex128)
                if self.use_tile_stats:
                    tables = np.zeros(
                        (slots, tile_shape[0] + 1, tile_shape[1] + 1),
                        dtype=np.complex128,
                    )
                mask = np.zeros((n_boundaries, dataset.cols), dtype=np.int8)

        _CTX = _RunCtx(
            impl=self, dataset=dataset, bands=bands,
            tiles=tiles, spectra=spectra, tables=tables, mask=mask,
            journal_spec=(
                self.journal.appender_spec() if self.journal is not None
                else None
            ),
            trace_enabled=self.tracer.enabled,
        )
        disp = DisplacementResult.empty(dataset.rows, dataset.cols)
        stats = {
            "reads": 0, "ffts": 0, "pairs": 0,
            "boundary_refts": 0, "duplicated_boundary_reads": 0,
            "bands": len(bands), "process_workers": len(bands) if use_pool else 0,
        }
        try:
            if use_pool:
                outcomes = self._run_pool(bands, n_boundaries)
            else:
                outcomes = [
                    _boundary_task(b) for b in range(n_boundaries)
                ] + [_band_task(k) for k in range(len(bands))]
            self._merge(disp, stats, outcomes)
        finally:
            _CTX = None
            if _APPENDER is not None:
                # Inline (poolless) tasks run in this process and may have
                # opened a worker-style appender; close it per run.
                _APPENDER.close()
                _APPENDER = None
            if arena is not None:
                arena.close()
        disp.stats = stats
        return disp, stats

    def _run_pool(self, bands, n_boundaries) -> list[_TaskOutcome]:
        """Fork the pool (after ``_CTX`` is staged) and run both phases."""
        ctx = mp.get_context("fork")
        outcomes: list[_TaskOutcome] = []
        with ProcessPoolExecutor(
            max_workers=len(bands), mp_context=ctx,
            initializer=_worker_init, initargs=(os.getpid(),),
        ) as pool:
            # Phase A must complete before any band consumes a slab; the
            # barrier is cheap (boundary rows are a 1/band_height slice
            # of the grid) and keeps Phase B entirely synchronization-free.
            for fut in [pool.submit(_boundary_task, b)
                        for b in range(n_boundaries)]:
                outcomes.append(fut.result())
            for fut in [pool.submit(_band_task, k)
                        for k in range(len(bands))]:
                outcomes.append(fut.result())
        return outcomes

    def _merge(self, disp: DisplacementResult, stats: dict,
               outcomes: list[_TaskOutcome]) -> None:
        """Fold worker outcomes into the parent-side result, in task order.

        Pair ownership is disjoint across bands, so the fold order cannot
        change any value -- but fixing it keeps every parent-side artifact
        (trace, fault report, journal accounting) deterministic too.
        """
        resumed = 0
        for out in outcomes:
            for d, r, c, t in out.pairs:
                disp.set(Direction(d), r, c, t)
            resumed += out.resumed
            for r, c, attempt, err in out.retries:
                if self.fault_report is not None:
                    self.fault_report.record_retry(
                        "read", (r, c), attempt, RuntimeError(err)
                    )
                if self.metrics is not None:
                    self.metrics.counter("read.retries").inc()
            for r, c, err in out.skipped_tiles:
                if self.fault_report is not None:
                    self.fault_report.record_skipped_tile(
                        (r, c), RuntimeError(err)
                    )
                if self.metrics is not None:
                    self.metrics.counter("read.skipped_tiles").inc()
            for d, r, c, reason in out.skipped_pairs:
                self._record_skipped_pair(d, r, c, reason=reason)
            for key, v in out.stats.items():
                stats[key] = stats.get(key, 0) + v
            self.tracer.absorb(out.spans, out.tracer_t0)
        if resumed:
            stats["resumed_pairs"] = resumed
        if self.journal is not None:
            self.journal.resumed_pairs += resumed
            self.journal.note_worker_pairs(stats.get("pairs", 0))
            if self.metrics is not None and resumed:
                self.metrics.counter("journal.pairs_resumed").inc(resumed)
