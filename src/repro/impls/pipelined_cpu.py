"""Pipelined-CPU: the 3-stage CPU pipeline (Section IV.B, last paragraph).

"the CPU pipeline consists of three stages: reader, displacement/fft, and
bookkeeping" and "includes all the memory mechanisms in its GPU
counterpart" -- i.e. the fixed transform pool and reference-counted early
release.

Topology (queues are bounded monitor queues)::

    reader --Q1--> compute (N workers) --Q2--> bookkeeper --(ready pairs)--+
                      ^                                                    |
                      +--------------------- Q1 <--------------------------+

The compute stage handles two item kinds: a *tile* item is FFT'd into a
pool slot; a *pair* item runs the displacement computation (NCC, inverse
FFT, reduction, CCFs).  The bookkeeper is the single-threaded state
machine (:class:`repro.pipeline.PairBookkeeper`): it turns FFT-ready
events into pair work and pair completions into pool releases, and closes
the queues when the last pair completes.

The transform pool bounds memory exactly as on the GPU: if it is sized
below the traversal wavefront the reader stalls; the default
(2 x min(rows, cols) + 4) is safe for the chained-diagonal order (tests
probe the boundary).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.core.displacement import DisplacementResult, Translation
from repro.core.downsample import downsample
from repro.core.pciam import forward_fft, forward_fft_batch
from repro.core.tilestats import TileStats
from repro.fftlib.plans import spectrum_shape
from repro.grid.neighbors import Pair
from repro.grid.tile_grid import GridPosition, TileGrid
from repro.grid.traversal import Traversal, traverse
from repro.impls.base import Implementation
from repro.io.dataset import TileDataset
from repro.memmodel.pool import BufferPool, PoolExhausted
from repro.memmodel.workspace import ThreadLocalWorkspaces
from repro.pipeline.bookkeeper import PairBookkeeper
from repro.pipeline.graph import Pipeline
from repro.pipeline.queues import MonitorQueue, QueueClosed
from repro.pipeline.stage import END_OF_STREAM
from repro.recovery.cancel import ItemCancelled


@dataclass
class _TileItem:
    pos: GridPosition
    pixels: np.ndarray
    #: Accumulated time this tile spent waiting for a pool slot (see the
    #: requeue logic in the compute stage).
    blocked_seconds: float = 0.0


@dataclass
class _TileBatch:
    """``fft_batch`` tiles transformed through one batched forward FFT.

    Carries the same pool-starvation accounting as a single tile; when
    only some of the batch gets slots, the remainder is requeued as a
    smaller batch (keeping its accumulated blocked time).
    """

    items: list
    blocked_seconds: float = 0.0


@dataclass
class _FftDone:
    pos: GridPosition
    slot: int


@dataclass
class _PairItem:
    pair: Pair


@dataclass
class _PairDone:
    pair: Pair


@dataclass
class _PairFailed:
    """An emitted pair's computation was abandoned (e.g. watchdog cancel)."""

    pair: Pair


@dataclass
class _TileFailed:
    """Reader could not deliver a tile (retries exhausted, skip policy)."""

    pos: GridPosition


def default_pool_size(rows: int, cols: int) -> int:
    """Safe transform-pool size for the chained-diagonal wavefront."""
    return 2 * min(rows, cols) + 4


class PipelinedCpu(Implementation):
    """3-stage CPU pipeline (1.4 min at 16 threads on the paper's machine)."""

    name = "pipelined-cpu"

    def __init__(
        self,
        workers: int = 4,
        pool_size: int | None = None,
        traversal: Traversal = Traversal.CHAINED_DIAGONAL,
        queue_size: int = 8,
        pool_timeout: float = 60.0,
        fft_batch: int = 1,
        **kw,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one compute worker, got {workers}")
        if fft_batch < 1:
            raise ValueError(f"fft_batch must be >= 1, got {fft_batch}")
        super().__init__(**kw)
        self.workers = workers
        self.pool_size = pool_size
        self.traversal = traversal
        self.queue_size = queue_size
        self.pool_timeout = pool_timeout
        #: Tiles per batched forward transform in the FFT stage; 1 keeps
        #: the classic one-FFT-per-item flow.  Batch slices are
        #: bit-identical to single transforms, so this is throughput-only.
        self.fft_batch = fft_batch

    def _run(self, dataset: TileDataset) -> tuple[DisplacementResult, dict]:
        rows, cols = dataset.rows, dataset.cols
        grid = TileGrid(rows, cols)
        pool_size = self.pool_size or default_pool_size(rows, cols)
        # The pool holds per-tile spectra: coarse mode shrinks every
        # buffer to the coarse transform shape (factor^2 less memory).
        pair_shape = self._pair_transform_shape(dataset)
        # Half-spectrum transforms shrink every pool buffer to
        # (h, w//2 + 1) -- the paper's "roughly half the memory".
        buf_shape = (
            spectrum_shape(pair_shape) if self.real_transforms else pair_shape
        )
        pool = BufferPool(pool_size, buf_shape, dtype=np.complex128)
        arena = self._make_arena(dataset, count=self.workers)
        workspaces = ThreadLocalWorkspaces(arena) if arena is not None else None
        bk = PairBookkeeper(grid, metrics=self.metrics)
        disp = DisplacementResult.empty(rows, cols)

        pipe = Pipeline(
            "pipelined-cpu", tracer=self.tracer, metrics=self.metrics,
            watchdog=self.watchdog,
        )
        # Q1 carries tile and pair work into the compute stage; it has two
        # producers (reader + bookkeeper), so stages put into it manually and
        # only the bookkeeper closes it (at end of computation).
        q_work = pipe.queue(maxsize=0, name="work")
        q_events = pipe.queue(maxsize=0, name="events")

        # Reader memory bound: tile pixels in flight are limited by a
        # semaphore released when the tile's FFT lands in a pool slot.
        tiles_in_flight = threading.Semaphore(self.queue_size)

        # Host-side state shared between stages, owned logically by the
        # bookkeeper (single thread) except the read-only pixel/slot maps.
        state_lock = threading.Lock()
        pixels: dict[GridPosition, np.ndarray] = {}
        slots: dict[GridPosition, int] = {}
        tstats: dict[GridPosition, TileStats] = {}
        stats_lock = threading.Lock()
        stats = {"reads": 0, "ffts": 0, "pairs": 0, "fft_copies_saved": 0}

        order = iter(list(traverse(grid, self.traversal)))

        #: Tiles awaiting a full batch (reader is single-threaded).
        pending_batch: list[_TileItem] = []

        def flush_batch() -> None:
            if pending_batch:
                q_work.put(_TileBatch(list(pending_batch)))
                pending_batch.clear()

        def reader(_item, _ctx):
            try:
                pos = next(order)
            except StopIteration:
                flush_batch()
                return END_OF_STREAM
            # Bounded wait so a pipeline abort cannot strand the reader on
            # the semaphore.
            while not tiles_in_flight.acquire(timeout=0.1):
                if q_work.closed:
                    return END_OF_STREAM
            if self.error_policy is None:
                tile = dataset.load(pos.row, pos.col)
            else:
                tile = self._load_tile(dataset, pos.row, pos.col)
                if tile is None:
                    tiles_in_flight.release()
                    q_events.put(_TileFailed(pos))
                    return None
            with stats_lock:
                stats["reads"] += 1
            if self.fft_batch > 1:
                pending_batch.append(_TileItem(pos, tile))
                if len(pending_batch) >= self.fft_batch:
                    flush_batch()
            else:
                q_work.put(_TileItem(pos, tile))
            return None

        def compute(item, ctx):
            # Cooperative-cancellation wrapper (watchdog supervision): a
            # cancelled item must still notify the bookkeeper, otherwise
            # its refcounts never drain and the pipeline waits forever on
            # a pair/tile that will never complete.  The exception is
            # re-raised so stage-level accounting (drop records, abort
            # dispositions) still applies.
            try:
                return _compute(item, ctx)
            except ItemCancelled:
                if self._skip_on_error:
                    if isinstance(item, _TileItem):
                        tiles_in_flight.release()
                        q_events.put(_TileFailed(item.pos))
                    elif isinstance(item, _TileBatch):
                        for t in item.items:
                            tiles_in_flight.release()
                            q_events.put(_TileFailed(t.pos))
                    elif isinstance(item, _PairItem):
                        q_events.put(_PairFailed(item.pair))
                raise

        def _compute(item, _ctx):
            if isinstance(item, _TileBatch):
                # Grab as many pool slots as are free right now; transform
                # that sub-batch in one backend call and requeue the rest.
                # Blocking for the full batch would recreate the deadlock
                # the single-tile path avoids (pairs behind us in the FIFO
                # are what release slots).
                acquired: list[int] = []
                try:
                    acquired.append(pool.acquire(timeout=0.05))
                    while len(acquired) < len(item.items):
                        acquired.append(pool.acquire(blocking=False))
                except (TimeoutError, PoolExhausted):
                    pass
                if not acquired:
                    item.blocked_seconds += 0.05
                    if item.blocked_seconds > self.pool_timeout:
                        raise TimeoutError(
                            f"transform pool ({pool.count} buffers) starved "
                            f"for {self.pool_timeout}s; pool too small for "
                            f"the traversal wavefront"
                        )
                    q_work.put(item)
                    return None
                take = item.items[: len(acquired)]
                rest = item.items[len(acquired):]
                if rest:
                    q_work.put(_TileBatch(rest, item.blocked_seconds))
                local: dict = {}
                # Coarse mode: downsample each tile, batch-transform the
                # stack at the coarse shape (the pool buffers' shape).
                batch_inputs = (
                    [downsample(t.pixels, self.coarse.factor) for t in take]
                    if self.coarse is not None
                    else [t.pixels for t in take]
                )
                ffts = forward_fft_batch(
                    batch_inputs, pair_shape, self.cache,
                    real=self.real_transforms, stats=local,
                )
                for t_item, slot, fft in zip(take, acquired, ffts):
                    pool.array(slot)[...] = fft
                    ts = (
                        TileStats(t_item.pixels) if self.use_tile_stats
                        else None
                    )
                    with state_lock:
                        pixels[t_item.pos] = t_item.pixels
                        slots[t_item.pos] = slot
                        if ts is not None:
                            tstats[t_item.pos] = ts
                    tiles_in_flight.release()
                    q_events.put(_FftDone(t_item.pos, slot))
                with stats_lock:
                    stats["ffts"] += len(take)
                    for key in ("fft_copies_saved", "fft_batches",
                                "fft_batched_tiles"):
                        if key in local:
                            stats[key] = stats.get(key, 0) + local[key]
                return None
            if isinstance(item, _TileItem):
                # Never block the whole worker pool on slot starvation: if
                # no slot frees up quickly, requeue the tile behind any
                # pending pair work (whose completion is what releases
                # slots).  Blocking here with every worker would deadlock:
                # tiles ahead of pairs in the FIFO would pin all workers.
                try:
                    slot = pool.acquire(timeout=0.05)
                except TimeoutError:
                    item.blocked_seconds += 0.05
                    if item.blocked_seconds > self.pool_timeout:
                        raise TimeoutError(
                            f"transform pool ({pool.count} buffers) starved "
                            f"for {self.pool_timeout}s; pool too small for "
                            f"the traversal wavefront"
                        )
                    q_work.put(item)
                    return None
                buf = pool.array(slot)
                local: dict = {}
                buf[...] = forward_fft(
                    downsample(item.pixels, self.coarse.factor)
                    if self.coarse is not None else item.pixels,
                    pair_shape, self.cache,
                    real=self.real_transforms, stats=local,
                )
                ts = TileStats(item.pixels) if self.use_tile_stats else None
                with state_lock:
                    pixels[item.pos] = item.pixels
                    slots[item.pos] = slot
                    if ts is not None:
                        tstats[item.pos] = ts
                with stats_lock:
                    stats["ffts"] += 1
                    stats["fft_copies_saved"] += local.get("fft_copies_saved", 0)
                tiles_in_flight.release()
                q_events.put(_FftDone(item.pos, slot))
            elif isinstance(item, _PairItem):
                pair = item.pair
                # Resume: a journaled pair still flows through the
                # bookkeeper (its _PairDone drives refcounts and slot
                # release) but skips the pciam computation entirely.
                journaled = self._journal_lookup(
                    pair.direction, pair.second.row, pair.second.col
                )
                if journaled is not None:
                    disp.set(
                        pair.direction, pair.second.row, pair.second.col,
                        journaled,
                    )
                    with stats_lock:
                        stats["resumed_pairs"] = stats.get("resumed_pairs", 0) + 1
                    q_events.put(_PairDone(pair))
                    return None
                with state_lock:
                    img_i = pixels[pair.first]
                    img_j = pixels[pair.second]
                    fft_i = pool.array(slots[pair.first])
                    fft_j = pool.array(slots[pair.second])
                    stats_i = tstats.get(pair.first)
                    stats_j = tstats.get(pair.second)
                local_pair: dict = {}
                res = self._register_pair(
                    img_i, img_j, fft_i=fft_i, fft_j=fft_j,
                    stats_i=stats_i, stats_j=stats_j,
                    workspace=workspaces.get() if workspaces is not None else None,
                    stats=local_pair,
                )
                t = Translation.from_pciam(res)
                disp.set(pair.direction, pair.second.row, pair.second.col, t)
                self._journal_record(
                    pair.direction, pair.second.row, pair.second.col, t
                )
                with stats_lock:
                    stats["pairs"] += 1
                    for key, v in local_pair.items():
                        stats[key] = stats.get(key, 0) + v
                q_events.put(_PairDone(pair))
            else:  # pragma: no cover - defensive
                raise TypeError(f"unexpected work item {item!r}")
            return None

        def release_tile(pos: GridPosition) -> None:
            with state_lock:
                slot = slots.pop(pos)
                pixels.pop(pos)
                tstats.pop(pos, None)
            pool.release(slot)

        def maybe_finish() -> None:
            if bk.all_pairs_completed():
                q_work.close()
                q_events.close()

        def bookkeeper(event, _ctx):
            if isinstance(event, _FftDone):
                for pair in bk.transform_ready(event.pos):
                    q_work.put(_PairItem(pair))
                # All of this tile's pairs were cancelled by failed
                # neighbours: its slot will never be consumed by pair work.
                if bk.releasable(event.pos):
                    release_tile(event.pos)
                maybe_finish()
            elif isinstance(event, _PairDone):
                for pos in bk.pair_completed(event.pair):
                    release_tile(pos)
                maybe_finish()
            elif isinstance(event, _PairFailed):
                self._record_skipped_pair(
                    event.pair.direction.name.lower(),
                    event.pair.second.row,
                    event.pair.second.col,
                    reason="pair computation cancelled",
                )
                for pos in bk.pair_failed(event.pair):
                    release_tile(pos)
                maybe_finish()
            elif isinstance(event, _TileFailed):
                for pair in bk._incident(event.pos):
                    self._record_skipped_pair(
                        pair.direction.name.lower(),
                        pair.second.row,
                        pair.second.col,
                        reason=f"tile ({event.pos.row},{event.pos.col}) unreadable",
                    )
                for pos in bk.tile_failed(event.pos):
                    release_tile(pos)
                maybe_finish()
            else:  # pragma: no cover - defensive
                raise TypeError(f"unexpected event {event!r}")
            return None

        pipe.stage("reader", reader, workers=1, input=None, output=None)
        pipe.stage("compute", compute, workers=self.workers, input=q_work, output=None)
        pipe.stage("bookkeeping", bookkeeper, workers=1, input=q_events, output=None)

        # Degenerate 1x1 grid: no pairs, no events; close queues up front.
        if bk.total_pairs == 0:
            q_work.close()
            q_events.close()
            disp.stats = stats
            return disp, stats

        pipe.run()
        if workspaces is not None:
            workspaces.release_all()
            stats["workspace_bytes"] = arena.bytes_per_workspace * max(
                1, arena.stats()["peak_in_use"]
            )
        stats["pool_peak_in_use"] = pool.peak_in_use
        stats["pool_size"] = pool_size
        stats.update({f"queue_{k}": v for k, v in pipe.stats()["queues"].items()})
        disp.stats = stats
        return disp, stats
