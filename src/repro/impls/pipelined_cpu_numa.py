"""Per-socket Pipelined-CPU (the paper's §IV.B future-work variant).

"In the future, we will modify this implementation to create one execution
pipeline per CPU socket."  The evaluation machine is a dual-socket Xeon;
one pipeline per socket keeps each pipeline's working set on its socket's
memory controller and halves contention on the shared queues.

Structure: the grid is decomposed into contiguous column partitions (one
per socket), exactly like the multi-GPU decomposition; each partition runs
its own 3-stage pipeline (reader / compute / bookkeeping) with a private
transform pool, and boundary ("ghost") columns are read and transformed by
both adjacent partitions.  Outputs land in disjoint cells of the shared
result.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.core.displacement import DisplacementResult, Translation
from repro.core.tilestats import TileStats
from repro.fftlib.plans import spectrum_shape
from repro.grid.neighbors import Pair, grid_pairs
from repro.grid.tile_grid import GridPosition, TileGrid
from repro.grid.traversal import Traversal, traverse
from repro.impls.base import Implementation
from repro.impls.pipelined_gpu import column_partitions
from repro.io.dataset import TileDataset
from repro.memmodel.pool import BufferPool
from repro.memmodel.workspace import ThreadLocalWorkspaces
from repro.pipeline.bookkeeper import PairBookkeeper
from repro.pipeline.graph import Pipeline
from repro.pipeline.stage import END_OF_STREAM
from repro.recovery.cancel import ItemCancelled


@dataclass
class _TileItem:
    pos: GridPosition
    pixels: np.ndarray
    blocked_seconds: float = 0.0


@dataclass
class _FftDone:
    pos: GridPosition
    slot: int


@dataclass
class _PairItem:
    pair: Pair


@dataclass
class _PairDone:
    pair: Pair


@dataclass
class _PairFailed:
    pair: Pair


@dataclass
class _TileFailed:
    pos: GridPosition


class PipelinedCpuNuma(Implementation):
    """One 3-stage CPU pipeline per socket over a column partition."""

    name = "pipelined-cpu-numa"

    def __init__(
        self,
        sockets: int = 2,
        workers_per_socket: int = 2,
        pool_size: int | None = None,
        traversal: Traversal = Traversal.CHAINED_DIAGONAL,
        queue_size: int = 8,
        pool_timeout: float = 60.0,
        **kw,
    ) -> None:
        if sockets < 1:
            raise ValueError("need at least one socket")
        if workers_per_socket < 1:
            raise ValueError("need at least one worker per socket")
        super().__init__(**kw)
        self.sockets = sockets
        self.workers_per_socket = workers_per_socket
        self.pool_size = pool_size
        self.traversal = traversal
        self.queue_size = queue_size
        self.pool_timeout = pool_timeout

    def _run(self, dataset: TileDataset) -> tuple[DisplacementResult, dict]:
        rows, cols = dataset.rows, dataset.cols
        grid = TileGrid(rows, cols)
        disp = DisplacementResult.empty(rows, cols)
        stats_lock = threading.Lock()
        stats = {"reads": 0, "ffts": 0, "pairs": 0, "sockets": 0}

        all_pairs = list(grid_pairs(grid))
        pipelines = []
        for k, (c0, c1) in enumerate(column_partitions(cols, self.sockets)):
            pairs = frozenset(
                p for p in all_pairs if c0 <= p.second.col < c1
            )
            if not pairs:
                continue
            stats["sockets"] += 1
            pipelines.append(
                self._build_pipeline(dataset, grid, disp, pairs, stats, stats_lock)
            )

        if not pipelines:  # 1x1 grid
            disp.stats = stats
            return disp, stats
        for p in pipelines:
            p.start()
        for p in pipelines:
            p.join()
        for p in pipelines:
            ws = getattr(p, "_workspaces", None)
            if ws is not None:
                ws.release_all()
        disp.stats = stats
        return disp, stats

    def _build_pipeline(
        self, dataset, grid, disp, pairs, stats, stats_lock
    ) -> Pipeline:
        bk = PairBookkeeper(grid, pairs=pairs, metrics=self.metrics)
        my_tiles = bk.tiles
        tile_cols = sorted({p.col for p in my_tiles})
        c_lo, c_hi = tile_cols[0], tile_cols[-1]
        pool_size = self.pool_size or (2 * min(grid.rows, c_hi - c_lo + 1) + 4)
        # Per-socket pools hold per-tile spectra; coarse mode shrinks
        # them to the coarse transform shape.
        pair_shape = self._pair_transform_shape(dataset)
        buf_shape = (
            spectrum_shape(pair_shape) if self.real_transforms else pair_shape
        )
        pool = BufferPool(pool_size, buf_shape, dtype=np.complex128)
        arena = self._make_arena(dataset, count=self.workers_per_socket)
        workspaces = ThreadLocalWorkspaces(arena) if arena is not None else None

        pipe = Pipeline(f"pipelined-cpu-numa-{c_lo}",
                        tracer=self.tracer, metrics=self.metrics,
                        watchdog=self.watchdog)
        pipe._workspaces = workspaces
        q_work = pipe.queue(maxsize=0, name="work")
        q_events = pipe.queue(maxsize=0, name="events")
        tiles_in_flight = threading.Semaphore(self.queue_size)

        state_lock = threading.Lock()
        pixels: dict[GridPosition, np.ndarray] = {}
        slots: dict[GridPosition, int] = {}
        tstats: dict[GridPosition, TileStats] = {}

        sub = TileGrid(grid.rows, c_hi - c_lo + 1)
        order = iter(
            [GridPosition(p.row, p.col + c_lo) for p in traverse(sub, self.traversal)
             if GridPosition(p.row, p.col + c_lo) in my_tiles]
        )

        def reader(_item, _ctx):
            try:
                pos = next(order)
            except StopIteration:
                return END_OF_STREAM
            while not tiles_in_flight.acquire(timeout=0.1):
                if q_work.closed:
                    return END_OF_STREAM
            if self.error_policy is None:
                tile = dataset.load(pos.row, pos.col)
            else:
                tile = self._load_tile(dataset, pos.row, pos.col)
                if tile is None:
                    tiles_in_flight.release()
                    q_events.put(_TileFailed(pos))
                    return None
            with stats_lock:
                stats["reads"] += 1
            q_work.put(_TileItem(pos, tile))
            return None

        def compute(item, ctx):
            # Same cancellation contract as pipelined-cpu: a cancelled
            # item notifies the bookkeeper before the drop propagates.
            try:
                return _compute(item, ctx)
            except ItemCancelled:
                if self._skip_on_error:
                    if isinstance(item, _TileItem):
                        tiles_in_flight.release()
                        q_events.put(_TileFailed(item.pos))
                    elif isinstance(item, _PairItem):
                        q_events.put(_PairFailed(item.pair))
                raise

        def _compute(item, _ctx):
            if isinstance(item, _TileItem):
                try:
                    slot = pool.acquire(timeout=0.05)
                except TimeoutError:
                    item.blocked_seconds += 0.05
                    if item.blocked_seconds > self.pool_timeout:
                        raise TimeoutError(
                            f"transform pool ({pool.count}) starved for "
                            f"{self.pool_timeout}s"
                        )
                    q_work.put(item)
                    return None
                buf = pool.array(slot)
                local: dict = {}
                buf[...] = self._forward_spectrum(item.pixels, stats=local)
                ts = TileStats(item.pixels) if self.use_tile_stats else None
                with state_lock:
                    pixels[item.pos] = item.pixels
                    slots[item.pos] = slot
                    if ts is not None:
                        tstats[item.pos] = ts
                with stats_lock:
                    stats["ffts"] += 1
                    stats["fft_copies_saved"] = (
                        stats.get("fft_copies_saved", 0)
                        + local.get("fft_copies_saved", 0)
                    )
                tiles_in_flight.release()
                q_events.put(_FftDone(item.pos, slot))
            elif isinstance(item, _PairItem):
                pair = item.pair
                journaled = self._journal_lookup(
                    pair.direction, pair.second.row, pair.second.col
                )
                if journaled is not None:
                    disp.set(pair.direction, pair.second.row, pair.second.col,
                             journaled)
                    with stats_lock:
                        stats["resumed_pairs"] = stats.get("resumed_pairs", 0) + 1
                    q_events.put(_PairDone(pair))
                    return None
                with state_lock:
                    img_i, img_j = pixels[pair.first], pixels[pair.second]
                    fft_i = pool.array(slots[pair.first])
                    fft_j = pool.array(slots[pair.second])
                    stats_i = tstats.get(pair.first)
                    stats_j = tstats.get(pair.second)
                local_pair: dict = {}
                res = self._register_pair(
                    img_i, img_j, fft_i=fft_i, fft_j=fft_j,
                    stats_i=stats_i, stats_j=stats_j,
                    workspace=workspaces.get() if workspaces is not None else None,
                    stats=local_pair,
                )
                t = Translation.from_pciam(res)
                disp.set(pair.direction, pair.second.row, pair.second.col, t)
                self._journal_record(
                    pair.direction, pair.second.row, pair.second.col, t
                )
                with stats_lock:
                    stats["pairs"] += 1
                    for key, v in local_pair.items():
                        stats[key] = stats.get(key, 0) + v
                q_events.put(_PairDone(pair))
            else:  # pragma: no cover
                raise TypeError(f"unexpected work item {item!r}")
            return None

        def release_tile(pos: GridPosition) -> None:
            with state_lock:
                pool.release(slots.pop(pos))
                pixels.pop(pos)
                tstats.pop(pos, None)

        def maybe_finish() -> None:
            if bk.all_pairs_completed():
                q_work.close()
                q_events.close()

        def bookkeeper(event, _ctx):
            if isinstance(event, _FftDone):
                for pair in bk.transform_ready(event.pos):
                    q_work.put(_PairItem(pair))
                if bk.releasable(event.pos):
                    release_tile(event.pos)
                maybe_finish()
            elif isinstance(event, _PairDone):
                for pos in bk.pair_completed(event.pair):
                    release_tile(pos)
                maybe_finish()
            elif isinstance(event, _PairFailed):
                self._record_skipped_pair(
                    event.pair.direction.name.lower(),
                    event.pair.second.row,
                    event.pair.second.col,
                    reason="pair computation cancelled",
                )
                for pos in bk.pair_failed(event.pair):
                    release_tile(pos)
                maybe_finish()
            elif isinstance(event, _TileFailed):
                for pair in bk._incident(event.pos):
                    self._record_skipped_pair(
                        pair.direction.name.lower(),
                        pair.second.row,
                        pair.second.col,
                        reason=f"tile ({event.pos.row},{event.pos.col}) unreadable",
                    )
                for pos in bk.tile_failed(event.pos):
                    release_tile(pos)
                maybe_finish()
            else:  # pragma: no cover
                raise TypeError(f"unexpected event {event!r}")
            return None

        pipe.stage("reader", reader, workers=1, input=None, output=None)
        pipe.stage("compute", compute, workers=self.workers_per_socket,
                   input=q_work, output=None)
        pipe.stage("bookkeeping", bookkeeper, workers=1, input=q_events, output=None)
        return pipe
