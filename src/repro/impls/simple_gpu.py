"""Simple-GPU: synchronous single-stream port of Simple-CPU (Fig. 6).

"The reference GPU implementation is single threaded on the CPU, executes
CUDA memory copies synchronously, and invokes all kernels on the default
stream."  It keeps forward transforms on-device in a tracked pool, frees
them by the early-release policy, copies only the reduction result back,
and runs the CCFs on the host -- all the paper's Simple-GPU optimizations,
with the paper's Simple-GPU architectural flaw: every device operation
round-trips through host synchronization, so the GPU idles during reads
and CCFs (the gaps of Fig. 7).

The host/device interleaving is modeled on the device's virtual clock: each
synchronous submission carries ``not_before = host_clock`` and advances the
host clock to the operation's end; host-only work (reads, CCFs) advances
the host clock by its modeled duration.  The trace's compute-engine density
is the quantity Fig. 7 visualizes.
"""

from __future__ import annotations

import numpy as np

from repro.core.ccf import ccf_at
from repro.core.coarse import resolve_coarse_peaks
from repro.core.displacement import DisplacementResult, Translation
from repro.core.downsample import downsample
from repro.core.peak import peak_candidates, peak_magnitude_ratio
from repro.core.pciam import CcfMode, pciam
from repro.core.tilestats import TileStats, ccf_at_stats
from repro.fftlib.plans import spectrum_shape
from repro.fftlib.smooth import pad_to_shape
from repro.gpu.costs import XEON_E5620, CpuCostModel
from repro.gpu.device import VirtualGpu
from repro.gpu.kernels import (
    fft2_kernel,
    ifft2_kernel,
    irfft2_kernel,
    ncc_kernel,
    reduce_max_kernel,
    rfft2_kernel,
)
from repro.gpu.profiler import TraceEvent
from repro.grid.neighbors import grid_pairs, pairs_for_tile
from repro.grid.tile_grid import GridPosition, TileGrid
from repro.grid.traversal import Traversal, traverse
from repro.impls.base import Implementation
from repro.io.dataset import TileDataset


class SimpleGpu(Implementation):
    """Synchronous single-stream GPU port (9.3 min on the paper's machine)."""

    name = "simple-gpu"

    def __init__(
        self,
        device: VirtualGpu | None = None,
        pool_size: int | None = None,
        traversal: Traversal = Traversal.CHAINED_DIAGONAL,
        host_costs: CpuCostModel = XEON_E5620,
        **kw,
    ) -> None:
        super().__init__(**kw)
        self.device = device
        self.pool_size = pool_size
        self.traversal = traversal
        self.host_costs = host_costs
        self.last_device: VirtualGpu | None = None

    def _run(self, dataset: TileDataset) -> tuple[DisplacementResult, dict]:
        device = self.device or VirtualGpu()
        self.last_device = device
        rows, cols = dataset.rows, dataset.cols
        grid = TileGrid(rows, cols)
        full_shape = tuple(self.fft_shape) if self.fft_shape else dataset.tile_shape
        # Coarse mode moves every device-side surface (staging, pool
        # buffers, NCC scratch, inverse) to the coarse transform shape --
        # factor^2 less device memory and H2D traffic.  The host keeps
        # full-resolution tiles + statistics for refinement and fallback.
        fft_shape = (
            self._pair_transform_shape(dataset)
            if self.coarse is not None else full_shape
        )
        hw = full_shape[0] * full_shape[1]
        real = self.real_transforms
        # Half-spectrum transforms shrink every device pool buffer to
        # (h, w//2+1) -- cuFFT R2C halves both work and footprint.
        buf_shape = spectrum_shape(fft_shape) if real else fft_shape
        # Pool: live transforms of the traversal wavefront plus one scratch
        # slot for the NCC / inverse-FFT surface.
        pool_size = self.pool_size or (2 * min(rows, cols) + 5)
        pool = device.create_pool(pool_size, buf_shape)
        stream = device.default_stream

        disp = DisplacementResult.empty(rows, cols)
        stats = {"reads": 0, "ffts": 0, "pairs": 0}
        tiles: dict[GridPosition, np.ndarray] = {}
        tstats: dict[GridPosition, TileStats] = {}
        slots: dict[GridPosition, int] = {}
        pairs_done: set = set()
        host_clock = 0.0

        # Resume: journaled pairs never touch the device; tiles whose
        # incident pairs are all journaled are not even read or copied.
        if self.journal is not None:
            resumed = 0
            for pair in grid_pairs(grid):
                t = self._journal_lookup(
                    pair.direction, pair.second.row, pair.second.col
                )
                if t is not None:
                    disp.set(pair.direction, pair.second.row, pair.second.col, t)
                    pairs_done.add(pair)
                    resumed += 1
            if resumed:
                stats["resumed_pairs"] = resumed

        def host_op(name: str, seconds: float) -> None:
            nonlocal host_clock
            device.profiler.record(
                TraceEvent(name=name, engine="host", stream=-1,
                           start=host_clock, end=host_clock + seconds)
            )
            host_clock += seconds

        # One persistent staging buffer for H2D copies (device-side, real
        # CUDA code would use pinned host + a device staging area).  With
        # real transforms the staged tile is float64, halving H2D traffic.
        staging = device.alloc(
            fft_shape, dtype=np.float64 if real else np.complex128
        )
        # The c2r inverse lands on a real spatial surface, which cannot
        # alias the half-spectrum scratch slot; one dedicated buffer.
        inv_buf = device.alloc(fft_shape, dtype=np.float64) if real else None

        failed: set[GridPosition] = set()

        def mark_failed(pos: GridPosition) -> None:
            failed.add(pos)
            # Mark the failed tile's pairs done so surviving neighbours'
            # transform slots are still recycled by release_if_done.
            for pair in pairs_for_tile(grid, pos.row, pos.col):
                if pair not in pairs_done:
                    pairs_done.add(pair)
                    self._record_skipped_pair(
                        pair.direction.name.lower(),
                        pair.second.row,
                        pair.second.col,
                        reason=f"tile ({pos.row},{pos.col}) unreadable",
                    )

        def load_and_transform(pos: GridPosition) -> None:
            nonlocal host_clock
            if all(p in pairs_done for p in pairs_for_tile(grid, pos.row, pos.col)):
                return
            if self.error_policy is None:
                tile = dataset.load(pos.row, pos.col)
            else:
                tile = self._load_tile(dataset, pos.row, pos.col)
                if tile is None:
                    mark_failed(pos)
                    return
            host_op("read-tile", self.host_costs.read(hw) + self.host_costs.decode(hw))
            stats["reads"] += 1
            src = (
                downsample(tile, self.coarse.factor)
                if self.coarse is not None else tile
            )
            src = src if src.shape == fft_shape else pad_to_shape(src, fft_shape)
            slot = pool.acquire(blocking=False)
            host_src = src if real else src.astype(np.complex128)
            ev = device.h2d(host_src, staging, stream, not_before=host_clock)
            host_clock = ev.end  # synchronous copy: host blocks
            fwd = rfft2_kernel if real else fft2_kernel
            ev = fwd(device, staging.data, pool.array(slot), stream, not_before=host_clock)
            host_clock = ev.end  # default stream, synchronous: host waits
            stats["ffts"] += 1
            tiles[pos] = tile
            if self.use_tile_stats:
                tstats[pos] = TileStats(tile)
            slots[pos] = slot

        def release_if_done(pos: GridPosition) -> None:
            if pos not in slots:
                return
            if all(p in pairs_done for p in pairs_for_tile(grid, pos.row, pos.col)):
                pool.release(slots.pop(pos))
                tiles.pop(pos)
                tstats.pop(pos, None)

        extended = self.ccf_mode is CcfMode.EXTENDED

        tracer = self.tracer
        for pos in traverse(grid, self.traversal):
            with tracer.span("read+fft", "simple-gpu", key=str(pos)):
                load_and_transform(pos)
            for pair in pairs_for_tile(grid, pos.row, pos.col):
                if pair in pairs_done or pair.first not in slots or pair.second not in slots:
                    continue
                pair_t0 = tracer.now() if tracer.enabled else 0.0
                scratch = pool.acquire(blocking=False)
                buf = pool.array(scratch)
                ev = ncc_kernel(
                    device, pool.array(slots[pair.first]), pool.array(slots[pair.second]),
                    buf, stream, not_before=host_clock,
                )
                host_clock = ev.end
                if real:
                    ev = irfft2_kernel(device, buf, inv_buf.data, stream,
                                       not_before=host_clock)
                    surface = inv_buf.data
                else:
                    ev = ifft2_kernel(device, buf, buf, stream, not_before=host_clock)
                    surface = buf
                host_clock = ev.end
                k = (
                    max(self.n_peaks, self.coarse.coarse_peaks)
                    if self.coarse is not None else self.n_peaks
                )
                peaks, ev = reduce_max_kernel(device, surface, stream,
                                              not_before=host_clock, k=k)
                host_clock = ev.end
                # D2H of the reduction result only (O(k) scalars).
                flat = np.array([v for p in peaks for v in p], dtype=np.float64)
                _, ev = device.d2h(flat, stream, not_before=host_clock)
                host_clock = ev.end
                pool.release(scratch)

                img_i, img_j = tiles[pair.first], tiles[pair.second]
                stats_i, stats_j = tstats.get(pair.first), tstats.get(pair.second)
                if self.coarse is not None:
                    # Host-side coarse-to-fine resolution: contest +
                    # hill-climb over the upscaled device peaks, full
                    # PCIAM (host FFTs from the retained pixels) when the
                    # confidence gate rejects.
                    cpeaks = [
                        (float(mag),
                         *map(int, np.unravel_index(int(flat_idx), fft_shape)))
                        for mag, flat_idx in peaks
                    ]
                    res = resolve_coarse_peaks(
                        cpeaks, fft_shape, config=self.coarse,
                        ccf_mode=self.ccf_mode,
                        img_i=img_i, img_j=img_j,
                        stats_i=stats_i, stats_j=stats_j,
                        use_tile_stats=self.use_tile_stats,
                        fallback=lambda: pciam(
                            img_i, img_j,
                            fft_shape=self.fft_shape,
                            ccf_mode=self.ccf_mode,
                            n_peaks=self.n_peaks,
                            real_transforms=real,
                            cache=self.cache,
                            stats_i=stats_i, stats_j=stats_j,
                            use_tile_stats=self.use_tile_stats,
                        ),
                        stats=stats,
                    )
                    host_op("ccf", self.host_costs.ccf(hw))
                    t = Translation.from_pciam(res)
                else:
                    best = (-np.inf, 0, 0)
                    seen: set[tuple[int, int]] = set()
                    for _mag, flat_idx in peaks:
                        py, px = np.unravel_index(int(flat_idx), fft_shape)
                        for tx, ty in peak_candidates(int(py), int(px), fft_shape, extended=extended):
                            if (tx, ty) in seen:
                                continue
                            seen.add((tx, ty))
                            if stats_i is not None and stats_j is not None:
                                c = ccf_at_stats(stats_i, stats_j, tx, ty)
                            else:
                                c = ccf_at(img_i, img_j, tx, ty)
                            if c > best[0]:
                                best = (c, tx, ty)
                    host_op("ccf", self.host_costs.ccf(hw))
                    corr, tx, ty = best
                    ratio = peak_magnitude_ratio([m for m, _ in peaks])
                    t = Translation(float(corr), int(tx), int(ty), peak_ratio=ratio)
                disp.set(pair.direction, pair.second.row, pair.second.col, t)
                self._journal_record(
                    pair.direction, pair.second.row, pair.second.col, t
                )
                pairs_done.add(pair)
                stats["pairs"] += 1
                if tracer.enabled:
                    tracer.record_span("pair", "simple-gpu", pair_t0,
                                       tracer.now(), key=str(pair))
            release_if_done(pos)
            for pair in pairs_for_tile(grid, pos.row, pos.col):
                release_if_done(pair.first if pair.second == pos else pair.second)

        if inv_buf is not None:
            device.free(inv_buf)
        device.free(staging)
        pool.destroy()
        stats["device_peak_bytes"] = device.allocator.peak_bytes
        stats["gpu_compute_density"] = device.profiler.density("compute")
        stats["d2h_bytes"] = device.profiler.bytes_copied("d2h")
        stats["streams_used"] = len(device.profiler.streams_used() - {-1})
        stats["virtual_makespan"] = max(device.synchronize(), host_clock)
        disp.stats = stats
        return disp, stats
