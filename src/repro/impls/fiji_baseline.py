"""Fiji-plugin-architecture baseline (the paper's Table II comparator).

The ImageJ/Fiji stitching plugin (Preibisch et al. 2009) executes "the same
mathematical operators" as the paper's system yet takes >3.6 h where the
pipelined GPU takes 49.7 s.  The gap is architectural, and this baseline
reproduces the plugin's architecture faithfully so the gap is measurable
here too:

- **no transform caching**: each pairwise registration recomputes *both*
  forward FFTs, so a grid pays ``2*(2nm - n - m)`` transforms instead of
  ``nm`` -- nearly 4x the transform work before anything else;
- **per-pair I/O**: tiles are re-read from disk for every pair they
  participate in (the plugin operates on ImagePlus objects fetched per
  comparison when memory pressure forces cache eviction);
- **per-pair allocation**: no buffer reuse across pairs;
- **multi-peak checking** (``n_peaks=5`` by default, the plugin's
  ``checkPeaks`` default), which costs extra CCF evaluations per pair.

Its *output* is equivalent to the reference implementation (same operators,
same answers); only the cost structure differs.
"""

from __future__ import annotations

from repro.core.displacement import DisplacementResult, Translation
from repro.grid.neighbors import grid_pairs
from repro.grid.tile_grid import TileGrid
from repro.impls.base import Implementation
from repro.io.dataset import TileDataset


class FijiBaseline(Implementation):
    """Plugin-style per-pair registration with no cross-pair reuse."""

    name = "fiji-baseline"

    def __init__(self, n_peaks: int = 5, **kw) -> None:
        kw.setdefault("cache", None)
        super().__init__(n_peaks=n_peaks, **kw)

    def _run(self, dataset: TileDataset) -> tuple[DisplacementResult, dict]:
        grid = TileGrid(dataset.rows, dataset.cols)
        disp = DisplacementResult.empty(dataset.rows, dataset.cols)
        stats = {"reads": 0, "ffts": 0, "pairs": 0, "resumed_pairs": 0}
        for pair in grid_pairs(grid):
            journaled = self._journal_lookup(
                pair.direction, pair.second.row, pair.second.col
            )
            if journaled is not None:
                disp.set(pair.direction, pair.second.row, pair.second.col,
                         journaled)
                stats["resumed_pairs"] += 1
                continue
            with self.tracer.span("pair", "fiji-baseline", key=str(pair)):
                # Deliberately reload and re-transform both tiles per pair.
                if self.error_policy is None:
                    img_i = dataset.load(*pair.first)
                    img_j = dataset.load(*pair.second)
                else:
                    img_i = self._load_tile(dataset, *pair.first)
                    img_j = self._load_tile(dataset, *pair.second)
                    if img_i is None or img_j is None:
                        bad = pair.first if img_i is None else pair.second
                        self._record_skipped_pair(
                            pair.direction.name.lower(),
                            pair.second.row,
                            pair.second.col,
                            reason=f"tile ({bad.row},{bad.col}) unreadable",
                        )
                        continue
                stats["reads"] += 2
                # No workspace on purpose -- per-pair allocation is part of
                # the plugin architecture being reproduced.  Kernel-level
                # choices (half-spectrum transforms, tile statistics,
                # coarse-to-fine registration) are shared: they change
                # cost, not architecture or answers.  In coarse mode both
                # coarse spectra are recomputed per pair, matching the
                # plugin's no-caching cost structure.
                r = self._register_pair(img_i, img_j, stats=stats)
                stats["ffts"] += 2
                stats["pairs"] += 1
                t = Translation.from_pciam(r)
                disp.set(pair.direction, pair.second.row, pair.second.col, t)
                self._journal_record(
                    pair.direction, pair.second.row, pair.second.col, t
                )
        disp.stats = stats
        return disp, stats
