"""The implementations compared in the paper's Table II.

All six compute the *same* phase-1 result (west/north translation arrays);
they differ only in architecture, which is the paper's entire point:

========================  ====================================================
``FijiBaseline``          the ImageJ/Fiji plugin architecture: same operators,
                          no transform caching, per-pair allocation
``SimpleCpu``             sequential reference with early-free traversal
``MtCpu``                 SPMD spatial decomposition over worker threads
``PipelinedCpu``          3-stage pipeline (read / fft+displacement / bookkeeping)
``SimpleGpu``             synchronous single-stream port onto the virtual GPU
``PipelinedGpu``          the 6-stage per-GPU pipeline of Fig. 8
========================  ====================================================

Every implementation is instrumented (op counts, memory high-water marks,
queue depths) so tests can verify the *architectural* claims -- transform
reuse, single-allocation pools, O(1) D2H traffic -- not just the outputs.
"""

from repro.impls.base import Implementation, RunResult
from repro.impls.simple_cpu import SimpleCpu
from repro.impls.fiji_baseline import FijiBaseline
from repro.impls.mt_cpu import MtCpu
from repro.impls.pipelined_cpu import PipelinedCpu
from repro.impls.pipelined_cpu_numa import PipelinedCpuNuma
from repro.impls.proc_cpu import ProcCpu
from repro.impls.simple_gpu import SimpleGpu
from repro.impls.pipelined_gpu import PipelinedGpu

ALL_IMPLEMENTATIONS = {
    "fiji-baseline": FijiBaseline,
    "simple-cpu": SimpleCpu,
    "mt-cpu": MtCpu,
    "proc-cpu": ProcCpu,
    "pipelined-cpu": PipelinedCpu,
    "pipelined-cpu-numa": PipelinedCpuNuma,
    "simple-gpu": SimpleGpu,
    "pipelined-gpu": PipelinedGpu,
}

__all__ = [
    "Implementation",
    "RunResult",
    "FijiBaseline",
    "SimpleCpu",
    "MtCpu",
    "ProcCpu",
    "PipelinedCpu",
    "PipelinedCpuNuma",
    "SimpleGpu",
    "PipelinedGpu",
    "ALL_IMPLEMENTATIONS",
]
