"""Tile-grid substrate: geometry, adjacency, and traversal orders.

The stitching computation is structured around an ``n x m`` grid of
overlapping tiles.  The memory behaviour of every implementation in the paper
is governed by the *order* in which tiles are visited (Section IV.A: the
chained-diagonal traversal frees transform memory earliest and is the
default) and by the 4-neighbour adjacency that defines which relative
displacements exist (Fig. 4: one *west* and one *north* translation per
tile, where present).
"""

from repro.grid.tile_grid import TileGrid, GridPosition
from repro.grid.neighbors import Direction, Pair, grid_pairs, pairs_for_tile
from repro.grid.traversal import (
    Traversal,
    traverse,
    peak_live_transforms,
    release_schedule,
)

__all__ = [
    "TileGrid",
    "GridPosition",
    "Direction",
    "Pair",
    "grid_pairs",
    "pairs_for_tile",
    "Traversal",
    "traverse",
    "peak_live_transforms",
    "release_schedule",
]
