"""Grid geometry: positions, linear indexing, acquisition numbering.

Microscopes number tiles in acquisition order (the stage path), which is not
necessarily row-major from the upper-left: stages commonly scan in a
serpentine ("combing") path and may start from any corner.
:class:`TileGrid` converts between grid coordinates ``(row, col)``, linear
indices, and acquisition sequence numbers so datasets written in any of
these conventions address the same tiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


@dataclass(frozen=True, order=True)
class GridPosition:
    """A tile's grid coordinates (row-major, origin upper-left)."""

    row: int
    col: int

    def __iter__(self):
        yield self.row
        yield self.col


class Origin(Enum):
    """Which grid corner the acquisition sequence starts from."""

    UPPER_LEFT = "ul"
    UPPER_RIGHT = "ur"
    LOWER_LEFT = "ll"
    LOWER_RIGHT = "lr"


class Numbering(Enum):
    """Acquisition path shape."""

    ROW_MAJOR = "row"            # raster: every row scanned left-to-right
    COLUMN_MAJOR = "column"      # raster by columns
    ROW_SERPENTINE = "row-serpentine"        # boustrophedon rows (stage combing)
    COLUMN_SERPENTINE = "column-serpentine"  # boustrophedon columns


class TileGrid:
    """An ``rows x cols`` tile grid with index/sequence conversions."""

    def __init__(
        self,
        rows: int,
        cols: int,
        origin: Origin = Origin.UPPER_LEFT,
        numbering: Numbering = Numbering.ROW_MAJOR,
    ) -> None:
        if rows < 1 or cols < 1:
            raise ValueError(f"grid must be at least 1x1, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self.origin = origin
        self.numbering = numbering

    def __len__(self) -> int:
        return self.rows * self.cols

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TileGrid({self.rows}x{self.cols}, {self.origin.value}, {self.numbering.value})"

    def __contains__(self, pos: tuple[int, int] | GridPosition) -> bool:
        r, c = pos
        return 0 <= r < self.rows and 0 <= c < self.cols

    # -- linear (row-major) indexing ---------------------------------------

    def index(self, row: int, col: int) -> int:
        """Row-major linear index of ``(row, col)``."""
        if (row, col) not in self:
            raise IndexError(f"({row},{col}) outside {self.rows}x{self.cols} grid")
        return row * self.cols + col

    def position(self, index: int) -> GridPosition:
        """Inverse of :meth:`index`."""
        if not 0 <= index < len(self):
            raise IndexError(f"index {index} outside grid of {len(self)} tiles")
        return GridPosition(index // self.cols, index % self.cols)

    # -- acquisition sequence ----------------------------------------------

    def _axis_flip(self, row: int, col: int) -> tuple[int, int]:
        if self.origin in (Origin.UPPER_RIGHT, Origin.LOWER_RIGHT):
            col = self.cols - 1 - col
        if self.origin in (Origin.LOWER_LEFT, Origin.LOWER_RIGHT):
            row = self.rows - 1 - row
        return row, col

    def sequence_of(self, row: int, col: int) -> int:
        """Acquisition sequence number of grid position ``(row, col)``."""
        if (row, col) not in self:
            raise IndexError(f"({row},{col}) outside {self.rows}x{self.cols} grid")
        r, c = self._axis_flip(row, col)
        if self.numbering is Numbering.ROW_MAJOR:
            return r * self.cols + c
        if self.numbering is Numbering.COLUMN_MAJOR:
            return c * self.rows + r
        if self.numbering is Numbering.ROW_SERPENTINE:
            cc = c if r % 2 == 0 else self.cols - 1 - c
            return r * self.cols + cc
        if self.numbering is Numbering.COLUMN_SERPENTINE:
            rr = r if c % 2 == 0 else self.rows - 1 - r
            return c * self.rows + rr
        raise AssertionError(self.numbering)  # pragma: no cover

    def position_of_sequence(self, seq: int) -> GridPosition:
        """Grid position of acquisition sequence number ``seq``."""
        if not 0 <= seq < len(self):
            raise IndexError(f"sequence {seq} outside grid of {len(self)} tiles")
        if self.numbering is Numbering.ROW_MAJOR:
            r, c = seq // self.cols, seq % self.cols
        elif self.numbering is Numbering.COLUMN_MAJOR:
            c, r = seq // self.rows, seq % self.rows
        elif self.numbering is Numbering.ROW_SERPENTINE:
            r, c = seq // self.cols, seq % self.cols
            if r % 2 == 1:
                c = self.cols - 1 - c
        elif self.numbering is Numbering.COLUMN_SERPENTINE:
            c, r = seq // self.rows, seq % self.rows
            if c % 2 == 1:
                r = self.rows - 1 - r
        else:  # pragma: no cover
            raise AssertionError(self.numbering)
        r, c = self._axis_flip(r, c)
        return GridPosition(r, c)

    # -- iteration -----------------------------------------------------------

    def positions(self):
        """All positions in row-major order."""
        for r in range(self.rows):
            for c in range(self.cols):
                yield GridPosition(r, c)
