"""Grid traversal orders and their memory consequences.

The paper's sequential implementation (Section IV.A) frees a tile's
transform "as soon as the relative displacements of its eastern, southern,
western, and northern neighbors were computed" and supports row, column,
diagonal, and *chained* traversal orders.  Chained-diagonal frees memory
earliest and is the default; the minimum GPU buffer-pool size "must exceed
the smallest dimension of the image grid" precisely because a diagonal
wavefront keeps about one grid-diagonal of transforms live.

:func:`peak_live_transforms` quantifies this: it replays a traversal against
the release policy and reports the maximum number of simultaneously live
transforms, which tests use to verify the chained-diagonal claim and which
the GPU pool sizing logic uses directly.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterator

from repro.grid.neighbors import pairs_for_tile
from repro.grid.tile_grid import GridPosition, TileGrid


class Traversal(Enum):
    """Supported traversal orders (Section IV.A)."""

    ROW = "row"
    COLUMN = "column"
    DIAGONAL = "diagonal"
    CHAINED_ROW = "chained-row"
    CHAINED_COLUMN = "chained-column"
    CHAINED_DIAGONAL = "chained-diagonal"


def traverse(grid: TileGrid, order: Traversal) -> Iterator[GridPosition]:
    """Yield every grid position exactly once in the requested order.

    "Chained" orders alternate direction between successive rows/columns/
    anti-diagonals so consecutive tiles stay adjacent (the traversal is a
    connected path), which keeps the working set compact.
    """
    rows, cols = grid.rows, grid.cols
    if order is Traversal.ROW:
        for r in range(rows):
            for c in range(cols):
                yield GridPosition(r, c)
    elif order is Traversal.COLUMN:
        for c in range(cols):
            for r in range(rows):
                yield GridPosition(r, c)
    elif order is Traversal.CHAINED_ROW:
        for r in range(rows):
            rng = range(cols) if r % 2 == 0 else range(cols - 1, -1, -1)
            for c in rng:
                yield GridPosition(r, c)
    elif order is Traversal.CHAINED_COLUMN:
        for c in range(cols):
            rng = range(rows) if c % 2 == 0 else range(rows - 1, -1, -1)
            for r in rng:
                yield GridPosition(r, c)
    elif order in (Traversal.DIAGONAL, Traversal.CHAINED_DIAGONAL):
        chained = order is Traversal.CHAINED_DIAGONAL
        for d in range(rows + cols - 1):
            r_lo = max(0, d - cols + 1)
            r_hi = min(rows - 1, d)
            rng = range(r_lo, r_hi + 1)
            if chained and d % 2 == 1:
                rng = range(r_hi, r_lo - 1, -1)
            for r in rng:
                yield GridPosition(r, d - r)
    else:  # pragma: no cover - exhaustive enum
        raise AssertionError(order)


def release_schedule(
    grid: TileGrid, order: Traversal
) -> list[tuple[GridPosition, list[GridPosition]]]:
    """Replay a traversal under the paper's early-free policy.

    For each visited tile, pair computations become *ready* when both
    members' transforms are live; a tile's transform is released once all
    its incident pairs have been computed.  Returns, per visit,
    ``(position, [transforms released after this visit])``.
    """
    visited: set[GridPosition] = set()
    pairs_done: set = set()
    released: set[GridPosition] = set()
    out: list[tuple[GridPosition, list[GridPosition]]] = []

    def incident_pairs(pos: GridPosition):
        return pairs_for_tile(grid, pos.row, pos.col)

    for pos in traverse(grid, order):
        visited.add(pos)
        # Compute every pair that just became ready.
        for pair in incident_pairs(pos):
            if pair.first in visited and pair.second in visited:
                pairs_done.add(pair)
        # Release any live transform whose incident pairs are all done.
        newly = []
        for cand in visited - released:
            if all(p in pairs_done for p in incident_pairs(cand)):
                released.add(cand)
                newly.append(cand)
        out.append((pos, sorted(newly)))
    return out


def peak_live_transforms(grid: TileGrid, order: Traversal) -> int:
    """Maximum number of simultaneously live transforms for a traversal.

    This is the quantity that crashes into the memory wall in Fig. 5 and
    that sizes the GPU buffer pool in the pipelined implementation.
    """
    live = 0
    peak = 0
    for _pos, freed in release_schedule(grid, order):
        live += 1
        peak = max(peak, live)
        live -= len(freed)
    return peak
