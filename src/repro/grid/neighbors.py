"""Adjacency: the west/north pair structure of the displacement graph.

Fig. 4 of the paper computes two translation arrays over the grid:
``translations-west[I] = pciam(I#west, I)`` (the tile relative to its western
neighbour) and ``translations-north[I] = pciam(I#north, I)``.  A grid of
``n x m`` tiles therefore has ``n*(m-1)`` WEST pairs and ``(n-1)*m`` NORTH
pairs -- ``2nm - n - m`` pairs total, the pair count in the paper's Table I.

Conventions (used consistently across the whole package):

- A :class:`Pair` is ``(first, second, direction)`` where *second* is the
  tile owning the edge and *first* is its west/north neighbour.
- The displacement stored for the pair positions *second* in *first*'s
  coordinate frame, i.e. ``tx`` is about ``+ (w - overlap)`` for WEST pairs
  and ``ty`` about ``+ (h - overlap)`` for NORTH pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator

from repro.grid.tile_grid import GridPosition, TileGrid


class Direction(Enum):
    """Edge direction in the displacement graph."""

    WEST = "west"    # edge between (r, c-1) -> (r, c)
    NORTH = "north"  # edge between (r-1, c) -> (r, c)


@dataclass(frozen=True, order=True)
class Pair:
    """An adjacent tile pair; ``first`` is the west/north neighbour of ``second``."""

    first: GridPosition
    second: GridPosition
    direction: Direction

    def __post_init__(self) -> None:
        fr, fc = self.first
        sr, sc = self.second
        if self.direction is Direction.WEST and (fr != sr or fc != sc - 1):
            raise ValueError(f"not a west pair: {self.first} -> {self.second}")
        if self.direction is Direction.NORTH and (fc != sc or fr != sr - 1):
            raise ValueError(f"not a north pair: {self.first} -> {self.second}")


def pairs_for_tile(grid: TileGrid, row: int, col: int) -> list[Pair]:
    """The (up to 4) pairs whose computation needs tile ``(row, col)``.

    These are the edges whose completion decrements the tile's transform
    reference count: its own west/north edges plus the west edge of its
    eastern neighbour and the north edge of its southern neighbour.
    """
    out: list[Pair] = []
    here = GridPosition(row, col)
    if col > 0:
        out.append(Pair(GridPosition(row, col - 1), here, Direction.WEST))
    if row > 0:
        out.append(Pair(GridPosition(row - 1, col), here, Direction.NORTH))
    if col + 1 < grid.cols:
        out.append(Pair(here, GridPosition(row, col + 1), Direction.WEST))
    if row + 1 < grid.rows:
        out.append(Pair(here, GridPosition(row + 1, col), Direction.NORTH))
    return out


def grid_pairs(grid: TileGrid) -> Iterator[Pair]:
    """All adjacent pairs of the grid, row-major by owning tile.

    Yields exactly ``2*rows*cols - rows - cols`` pairs (Table I).
    """
    for r in range(grid.rows):
        for c in range(grid.cols):
            here = GridPosition(r, c)
            if c > 0:
                yield Pair(GridPosition(r, c - 1), here, Direction.WEST)
            if r > 0:
                yield Pair(GridPosition(r - 1, c), here, Direction.NORTH)


def pair_count(grid: TileGrid) -> int:
    """Closed-form pair count ``2nm - n - m`` from Table I."""
    n, m = grid.rows, grid.cols
    return 2 * n * m - n - m
