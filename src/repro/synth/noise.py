"""Camera model: flat-field vignette, shot/read noise, quantization.

Applied per tile (not per plate) because vignetting and noise are properties
of each *exposure*: the same specimen point imaged in two overlapping tiles
gets different vignette attenuation and independent noise, exactly the
nuisance structure the normalized correlation in the paper is robust to.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CameraModel:
    """A simple CCD model producing 16-bit (or 8-bit) counts.

    ``full_well`` maps specimen intensity 1.0 to this many counts before
    noise.  ``vignette`` is the fractional attenuation at the image corners
    relative to the centre (0 disables flat-field effects).  ``shot_noise``
    scales Poisson-like noise with the signal; ``read_noise`` is additive
    Gaussian in counts.
    """

    bit_depth: int = 16
    full_well: float = 20000.0
    vignette: float = 0.15
    shot_noise: float = 1.0
    read_noise: float = 25.0

    def __post_init__(self) -> None:
        if self.bit_depth not in (8, 16):
            raise ValueError(f"bit depth must be 8 or 16, got {self.bit_depth}")
        if not 0.0 <= self.vignette < 1.0:
            raise ValueError(f"vignette must be in [0, 1), got {self.vignette}")

    @property
    def dtype(self):
        return np.uint8 if self.bit_depth == 8 else np.uint16

    @property
    def max_count(self) -> int:
        return (1 << self.bit_depth) - 1

    def vignette_field(self, shape: tuple[int, int]) -> np.ndarray:
        """Radial attenuation field in ``(0, 1]`` (1 at centre)."""
        h, w = shape
        y = np.linspace(-1.0, 1.0, h)[:, None]
        x = np.linspace(-1.0, 1.0, w)[None, :]
        r2 = (y * y + x * x) / 2.0  # normalized so corners have r2 == 1
        return 1.0 - self.vignette * r2

    def expose(
        self, radiance: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Convert specimen radiance in ``[0, 1]`` to quantized camera counts."""
        if radiance.ndim != 2:
            raise ValueError(f"expected 2-D radiance, got shape {radiance.shape}")
        signal = radiance * self.full_well
        if self.vignette > 0:
            signal = signal * self.vignette_field(radiance.shape)
        if self.shot_noise > 0:
            # Gaussian approximation of Poisson noise: var == signal.
            signal = signal + self.shot_noise * np.sqrt(np.maximum(signal, 0.0)) * (
                rng.standard_normal(signal.shape)
            )
        if self.read_noise > 0:
            signal = signal + self.read_noise * rng.standard_normal(signal.shape)
        np.clip(signal, 0, self.max_count, out=signal)
        return signal.astype(self.dtype)


NOISELESS = CameraModel(vignette=0.0, shot_noise=0.0, read_noise=0.0)


# -- data-level damage (docs/ROBUSTNESS.md) ---------------------------------
#
# These model *content* faults rather than I/O faults: the tile reads
# fine, but what is in it misleads registration.  All are deterministic
# functions of the supplied generator and dtype-agnostic (they preserve
# the input dtype), so a seeded fault plan replays bit-identically at
# whatever precision the pipeline loads tiles in.


def apply_dust(
    pixels: np.ndarray,
    rng: np.random.Generator,
    blobs: int = 8,
    radius_frac: float = 0.18,
    opacity: float = 0.95,
) -> np.ndarray:
    """Dark occluding blobs: dust or debris on the slide or optics.

    Each blob multiplies the covered pixels by ``1 - opacity``.  Dust is
    *per exposure*, so the same specimen point in the overlapping
    neighbour is unobstructed -- the overlap contents disagree and the
    pair's correlation collapses.
    """
    if pixels.ndim != 2:
        raise ValueError(f"expected a 2-D tile, got shape {pixels.shape}")
    out = pixels.astype(np.float64)
    h, w = out.shape
    yy = np.arange(h, dtype=np.float64)[:, None]
    xx = np.arange(w, dtype=np.float64)[None, :]
    for _ in range(blobs):
        cy = rng.uniform(0.0, h)
        cx = rng.uniform(0.0, w)
        r = rng.uniform(0.5, 1.0) * radius_frac * min(h, w)
        mask = (yy - cy) ** 2 + (xx - cx) ** 2 <= r * r
        out[mask] *= 1.0 - opacity
    return out.astype(pixels.dtype)


def apply_saturation(
    pixels: np.ndarray,
    level: float,
    fraction: float = 0.85,
) -> np.ndarray:
    """Blown-out exposure: the brightest ``fraction`` of pixels clip to
    ``level`` (the sensor's full-scale count).

    Clipping destroys the texture the phase correlation keys on, leaving
    a nearly flat tile whose every candidate offset correlates equally
    badly.
    """
    if pixels.ndim != 2:
        raise ValueError(f"expected a 2-D tile, got shape {pixels.shape}")
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    out = pixels.astype(np.float64)
    thresh = np.quantile(out, 1.0 - fraction)
    out[out >= thresh] = float(level)
    return out.astype(pixels.dtype)


def apply_content_shift(
    pixels: np.ndarray,
    rng: np.random.Generator,
    magnitude: int | None = None,
) -> np.ndarray:
    """Circularly shift the tile contents by a large random offset.

    Models a stage glitch / wrong-well acquisition: the tile is sharp
    and textured, so phase correlation locks on *confidently* -- at an
    offset that is wrong by the shift.  This is the fault class the
    stage-model deviation gate exists for (a confidence threshold alone
    cannot see it).
    """
    if pixels.ndim != 2:
        raise ValueError(f"expected a 2-D tile, got shape {pixels.shape}")
    h, w = pixels.shape
    if magnitude is None:
        magnitude = max(16, min(h, w) // 4)
    dy = int(magnitude) * (1 if rng.integers(0, 2) else -1)
    dx = int(magnitude) * (1 if rng.integers(0, 2) else -1)
    return np.roll(pixels, (dy, dx), axis=(0, 1))
