"""Plate-scale specimen synthesis: cell colonies on a textured background.

The generator is fully vectorized: cells are rendered as anisotropic
Gaussian splats accumulated into the plate canvas patch-by-patch (a few
hundred small array additions), and the background is low-frequency noise
upsampled from a coarse lattice -- no per-pixel Python loops.

``density`` spans the paper's two regimes: high density mimics a mature
5-day colony plate (feature-rich), very low density mimics the early hours
after seeding where "few distinguishable features" exist in tile overlaps
(the regime that rules out feature-based stitching, Section I).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SpecimenParams:
    """Parameters of the synthetic plate.

    ``colony_count`` colonies are seeded at uniform positions; each colony
    holds ``cells_per_colony`` cells scattered with an isotropic Gaussian of
    radius ``colony_radius``.  ``background_texture`` scales the
    low-frequency background modulation (0 disables it -- worst case for
    correlation in empty regions).
    """

    colony_count: int = 24
    cells_per_colony: int = 60
    colony_radius: float = 60.0
    cell_radius: float = 4.0
    cell_eccentricity: float = 0.5
    cell_intensity: float = 0.55
    background_level: float = 0.12
    background_texture: float = 0.04
    texture_scale: int = 48
    #: Fine-grained specimen detail (debris, media granularity) -- the
    #: high-frequency content phase correlation locks onto.  Real microscope
    #: frames always carry this; without it the whitened spectrum is pure
    #: noise outside the colony blobs and the correlation peak is ambiguous.
    fine_texture: float = 0.05
    fine_texture_scale: int = 3
    #: Pixel-scale specimen granularity (broadband, at the resolution
    #: limit).  Phase correlation whitens the spectrum, so coherent energy
    #: must exist across *all* frequency bins of the overlap for the peak to
    #: beat the incoherent floor -- band-limited texture alone leaves the
    #: upper ~90 % of bins carrying pure noise.  This is fixed specimen
    #: structure (identical wherever two tiles overlap), unlike camera noise.
    granularity: float = 0.03


def _low_frequency_texture(
    shape: tuple[int, int], scale: int, rng: np.random.Generator
) -> np.ndarray:
    """Smooth unit-amplitude texture via bilinear upsampling of coarse noise."""
    h, w = shape
    gh = max(2, h // scale + 2)
    gw = max(2, w // scale + 2)
    coarse = rng.standard_normal((gh, gw))
    # Bilinear interpolation with vectorized gather.
    ys = np.linspace(0, gh - 1.0001, h)
    xs = np.linspace(0, gw - 1.0001, w)
    y0 = ys.astype(int)
    x0 = xs.astype(int)
    fy = (ys - y0)[:, None]
    fx = (xs - x0)[None, :]
    c00 = coarse[np.ix_(y0, x0)]
    c01 = coarse[np.ix_(y0, x0 + 1)]
    c10 = coarse[np.ix_(y0 + 1, x0)]
    c11 = coarse[np.ix_(y0 + 1, x0 + 1)]
    tex = (
        c00 * (1 - fy) * (1 - fx)
        + c01 * (1 - fy) * fx
        + c10 * fy * (1 - fx)
        + c11 * fy * fx
    )
    peak = np.abs(tex).max()
    if peak > 0:
        tex /= peak
    return tex


def _splat(canvas: np.ndarray, cy: float, cx: float, patch: np.ndarray) -> None:
    """Add ``patch`` centred at ``(cy, cx)``, clipped to the canvas."""
    ph, pw = patch.shape
    y0 = int(round(cy)) - ph // 2
    x0 = int(round(cx)) - pw // 2
    ys0, xs0 = max(0, y0), max(0, x0)
    ys1 = min(canvas.shape[0], y0 + ph)
    xs1 = min(canvas.shape[1], x0 + pw)
    if ys1 <= ys0 or xs1 <= xs0:
        return
    canvas[ys0:ys1, xs0:xs1] += patch[ys0 - y0 : ys1 - y0, xs0 - x0 : xs1 - x0]


def _cell_patch(
    radius: float, eccentricity: float, angle: float, intensity: float
) -> np.ndarray:
    """Anisotropic Gaussian blob patch for a single cell."""
    r_major = radius * (1.0 + eccentricity)
    r_minor = radius
    half = int(np.ceil(3 * r_major))
    y, x = np.mgrid[-half : half + 1, -half : half + 1].astype(float)
    ca, sa = np.cos(angle), np.sin(angle)
    u = ca * x + sa * y
    v = -sa * x + ca * y
    return intensity * np.exp(-0.5 * ((u / r_major) ** 2 + (v / r_minor) ** 2))


def generate_plate(
    height: int,
    width: int,
    params: SpecimenParams | None = None,
    seed: int | np.random.Generator = 0,
) -> np.ndarray:
    """Render a plate image in ``[0, 1]`` as ``float64`` of ``(height, width)``.

    Deterministic for a given seed.  Intensity is clipped to ``[0, 1]``;
    conversion to camera counts happens in :mod:`repro.synth.noise`.
    """
    if height < 8 or width < 8:
        raise ValueError(f"plate must be at least 8x8, got {height}x{width}")
    p = params or SpecimenParams()
    rng = np.random.default_rng(seed) if not isinstance(seed, np.random.Generator) else seed

    canvas = np.full((height, width), p.background_level, dtype=np.float64)
    if p.background_texture > 0:
        canvas += p.background_texture * _low_frequency_texture(
            (height, width), p.texture_scale, rng
        )
    if p.fine_texture > 0:
        canvas += p.fine_texture * _low_frequency_texture(
            (height, width), p.fine_texture_scale, rng
        )
    if p.granularity > 0:
        canvas += p.granularity * rng.standard_normal((height, width))

    for _ in range(p.colony_count):
        colony_y = rng.uniform(0, height)
        colony_x = rng.uniform(0, width)
        n_cells = max(1, int(rng.poisson(p.cells_per_colony)))
        offsets = rng.normal(0.0, p.colony_radius, size=(n_cells, 2))
        radii = rng.uniform(0.75, 1.35, size=n_cells) * p.cell_radius
        angles = rng.uniform(0, np.pi, size=n_cells)
        intensities = rng.uniform(0.6, 1.0, size=n_cells) * p.cell_intensity
        for (dy, dx), r, ang, inten in zip(offsets, radii, angles, intensities):
            patch = _cell_patch(r, p.cell_eccentricity, ang, inten)
            _splat(canvas, colony_y + dy, colony_x + dx, patch)

    np.clip(canvas, 0.0, 1.0, out=canvas)
    return canvas


def sparse_plate(
    height: int, width: int, seed: int = 0, colony_count: int = 3
) -> np.ndarray:
    """Convenience: an early-experiment, feature-poor plate (Section I)."""
    params = SpecimenParams(
        colony_count=colony_count,
        cells_per_colony=12,
        background_texture=0.015,
        fine_texture=0.02,
    )
    return generate_plate(height, width, params, seed)
