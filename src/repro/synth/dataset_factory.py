"""One-call synthetic dataset creation (plate -> scan -> TIFF directory)."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.io.dataset import TileDataset
from repro.synth.microscope import ScanPlan, StageModel, VirtualMicroscope
from repro.synth.noise import CameraModel
from repro.synth.specimen import SpecimenParams, generate_plate


def make_synthetic_dataset(
    directory: str | Path,
    rows: int = 4,
    cols: int = 4,
    tile_height: int = 128,
    tile_width: int = 128,
    overlap: float = 0.2,
    seed: int = 0,
    stage: StageModel | None = None,
    camera: CameraModel | None = None,
    specimen: SpecimenParams | None = None,
) -> TileDataset:
    """Generate a plate, scan it, and write a TIFF tile dataset.

    The default parameters give a quick, feature-rich acquisition suitable
    for tests and the quickstart example; the benchmark harness scales the
    same call up to paper-sized grids.  Ground-truth tile origins are stored
    in the dataset metadata.
    """
    stage = stage or StageModel(
        jitter_sigma=max(1.0, 0.01 * tile_width),
        backlash_x=max(1.0, 0.015 * tile_width),
        backlash_y=1.0,
        max_error=max(4.0, 0.35 * overlap * min(tile_height, tile_width)),
    )
    scope = VirtualMicroscope(stage=stage, camera=camera, seed=seed)
    plan = ScanPlan(
        rows=rows,
        cols=cols,
        tile_height=tile_height,
        tile_width=tile_width,
        overlap=overlap,
    )
    margin = int(np.ceil(stage.max_error)) + 2
    plate_h, plate_w = plan.plate_shape(margin)
    if specimen is None:
        # Scale colony structure with plate area so every tile overlap has
        # texture to correlate on.
        area = plate_h * plate_w
        specimen = SpecimenParams(
            colony_count=max(6, area // 40000),
            cells_per_colony=40,
            colony_radius=max(12.0, 0.2 * min(tile_height, tile_width)),
            cell_radius=max(2.0, 0.02 * min(tile_height, tile_width)),
        )
    plate = generate_plate(plate_h, plate_w, specimen, seed=seed)
    tiles, positions = scope.scan(plate, plan, margin=margin)
    return TileDataset.create(
        directory,
        tiles,
        overlap=overlap,
        true_positions=positions,
        stage_model=stage.to_dict(),
    )
