"""Virtual microscope: scan a plate into an overlapping tile grid.

The displacement computation exists because realized tile positions differ
from the programmed ones: the paper attributes this to "the mechanical
properties of the microscope's stage, actuator backlashes, and camera
angle".  :class:`StageModel` reproduces the first two effects:

- *jitter*: i.i.d. Gaussian positioning error per stage move;
- *backlash*: a systematic offset whose sign follows the travel direction,
  visible in serpentine scans as alternating-row x bias.

The scan records ground-truth tile origins (in plate pixels) so downstream
tests can score recovered displacements exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict

import numpy as np

from repro.grid.tile_grid import Numbering, TileGrid
from repro.synth.noise import CameraModel


@dataclass(frozen=True)
class StageModel:
    """Mechanical error model of the stage (pixels)."""

    jitter_sigma: float = 2.0
    backlash_x: float = 3.0
    backlash_y: float = 1.0
    max_error: float = 12.0

    def __post_init__(self) -> None:
        if self.jitter_sigma < 0 or self.max_error < 0:
            raise ValueError("stage error magnitudes must be non-negative")

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class ScanPlan:
    """Programmed scan: grid size, tile size, nominal overlap fraction."""

    rows: int
    cols: int
    tile_height: int
    tile_width: int
    overlap: float = 0.10
    numbering: Numbering = Numbering.ROW_SERPENTINE

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError(f"grid must be at least 1x1, got {self.rows}x{self.cols}")
        if self.tile_height < 8 or self.tile_width < 8:
            raise ValueError("tiles must be at least 8x8")
        if not 0.0 < self.overlap < 0.9:
            raise ValueError(f"overlap fraction must be in (0, 0.9), got {self.overlap}")

    @property
    def step_y(self) -> int:
        """Programmed vertical stage step between rows (pixels)."""
        return max(1, int(round(self.tile_height * (1.0 - self.overlap))))

    @property
    def step_x(self) -> int:
        """Programmed horizontal stage step between columns (pixels)."""
        return max(1, int(round(self.tile_width * (1.0 - self.overlap))))

    def plate_shape(self, margin: int) -> tuple[int, int]:
        """Plate size needed to contain the scan plus error ``margin``."""
        h = self.step_y * (self.rows - 1) + self.tile_height + 2 * margin
        w = self.step_x * (self.cols - 1) + self.tile_width + 2 * margin
        return h, w


class VirtualMicroscope:
    """Scans a plate image into tiles through a stage and camera model."""

    def __init__(
        self,
        stage: StageModel | None = None,
        camera: CameraModel | None = None,
        seed: int = 0,
    ) -> None:
        self.stage = stage or StageModel()
        self.camera = camera or CameraModel()
        self.seed = seed

    def true_positions(self, plan: ScanPlan, margin: int) -> np.ndarray:
        """Realized tile origins ``[rows, cols, 2]`` as ``(y, x)`` ints.

        Tiles are visited in acquisition order (the plan's numbering) so
        backlash sign tracks physical travel direction; positions are
        clamped to keep every tile inside the plate.
        """
        rng = np.random.default_rng(self.seed)
        plan_grid = TileGrid(plan.rows, plan.cols, numbering=plan.numbering)
        pos = np.zeros((plan.rows, plan.cols, 2), dtype=np.int64)
        prev_col = None
        for seq in range(len(plan_grid)):
            gp = plan_grid.position_of_sequence(seq)
            nominal_y = margin + gp.row * plan.step_y
            nominal_x = margin + gp.col * plan.step_x
            err = rng.normal(0.0, self.stage.jitter_sigma, size=2)
            # Backlash: sign follows x travel direction between consecutive
            # acquisitions (serpentine rows alternate it); y backlash applies
            # on row changes (stage always advances downward).
            if prev_col is not None:
                dx = gp.col - prev_col
                if dx > 0:
                    err[1] += self.stage.backlash_x
                elif dx < 0:
                    err[1] -= self.stage.backlash_x
                else:
                    err[0] += self.stage.backlash_y
            prev_col = gp.col
            err = np.clip(err, -self.stage.max_error, self.stage.max_error)
            pos[gp.row, gp.col, 0] = int(round(nominal_y + err[0]))
            pos[gp.row, gp.col, 1] = int(round(nominal_x + err[1]))
        return pos

    def scan(
        self, plate: np.ndarray, plan: ScanPlan, margin: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Acquire ``(tiles, true_positions)`` from a plate image.

        ``tiles`` is ``[rows, cols, th, tw]`` in the camera dtype;
        ``true_positions`` is ``[rows, cols, 2]`` (y, x).  Raises if the
        plate is too small for the plan plus stage-error margin.
        """
        if margin is None:
            margin = int(np.ceil(self.stage.max_error)) + 2
        need = plan.plate_shape(margin)
        if plate.shape[0] < need[0] or plate.shape[1] < need[1]:
            raise ValueError(
                f"plate {plate.shape} too small for plan needing {need} "
                f"(including margin {margin})"
            )
        positions = self.true_positions(plan, margin)
        rng = np.random.default_rng(self.seed + 1)
        tiles = np.empty(
            (plan.rows, plan.cols, plan.tile_height, plan.tile_width),
            dtype=self.camera.dtype,
        )
        for r in range(plan.rows):
            for c in range(plan.cols):
                y, x = positions[r, c]
                fov = plate[y : y + plan.tile_height, x : x + plan.tile_width]
                tiles[r, c] = self.camera.expose(fov, rng)
        return tiles, positions
