"""Time-series acquisition: repeated scans of a growing culture.

The paper's motivating experiment (Section I) images one plate every
45 minutes for 5 days while cell colonies grow; a particular run produced
161 scans of an 18x22 grid.  This module synthesizes that workload: one
set of colony *sites* is fixed for the whole experiment, and each scan
renders the plate at a later growth stage (more cells per colony, larger
radius) before scanning it with fresh stage error.

Colony sites persist across scans because each colony renders from its own
child RNG (derived from the experiment seed and the colony index), so
growth changes a colony's cell count without perturbing any other
colony's placement -- scan ``t`` really is "the same plate, later".
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.io.dataset import TileDataset
from repro.synth.microscope import ScanPlan, StageModel, VirtualMicroscope
from repro.synth.noise import CameraModel
from repro.synth.specimen import SpecimenParams, _cell_patch, _low_frequency_texture, _splat


@dataclass(frozen=True)
class GrowthModel:
    """Colony growth between scans.

    At scan ``t`` a colony holds ``initial_cells * (1 + growth_rate)**t``
    cells scattered with radius ``initial_radius * (1 + spread_rate)**t``,
    capped at ``max_cells``.
    """

    initial_cells: float = 6.0
    growth_rate: float = 0.35
    initial_radius: float = 14.0
    spread_rate: float = 0.12
    max_cells: int = 400

    def cells_at(self, scan: int) -> int:
        return int(min(self.max_cells, round(self.initial_cells * (1.0 + self.growth_rate) ** scan)))

    def radius_at(self, scan: int) -> float:
        return self.initial_radius * (1.0 + self.spread_rate) ** scan

    def birth_scan(self, cell_index: int) -> int:
        """First scan at which cell ``cell_index`` exists.

        A cell's position is fixed at birth (at the colony spread radius of
        *that* scan), so later scans only add cells -- growth is strictly
        additive, never migratory.
        """
        t = 0
        while self.cells_at(t) <= cell_index:
            t += 1
            if t > 10_000:  # pragma: no cover - growth_rate <= 0 guard
                raise ValueError("growth model never produces this cell")
        return t


class TimeSeriesExperiment:
    """A long-running experiment: fixed plate, repeated scans."""

    def __init__(
        self,
        plan: ScanPlan,
        colony_count: int = 6,
        growth: GrowthModel | None = None,
        specimen: SpecimenParams | None = None,
        stage: StageModel | None = None,
        camera: CameraModel | None = None,
        seed: int = 0,
        imaging_period_s: float = 45 * 60.0,
    ) -> None:
        self.plan = plan
        self.colony_count = colony_count
        self.growth = growth or GrowthModel()
        self.specimen = specimen or SpecimenParams()
        self.stage = stage or StageModel()
        self.camera = camera or CameraModel()
        self.seed = seed
        self.imaging_period_s = imaging_period_s
        self.margin = int(np.ceil(self.stage.max_error)) + 2
        self._plate_shape = plan.plate_shape(self.margin)
        root = np.random.default_rng(seed)
        h, w = self._plate_shape
        # Fixed experiment state: colony sites and the static background.
        self._sites = [(root.uniform(0, h), root.uniform(0, w)) for _ in range(colony_count)]
        self._background = np.full(self._plate_shape, self.specimen.background_level)
        if self.specimen.background_texture > 0:
            self._background += self.specimen.background_texture * _low_frequency_texture(
                self._plate_shape, self.specimen.texture_scale, root
            )
        if self.specimen.fine_texture > 0:
            self._background += self.specimen.fine_texture * _low_frequency_texture(
                self._plate_shape, self.specimen.fine_texture_scale, root
            )
        if self.specimen.granularity > 0:
            self._background += self.specimen.granularity * root.standard_normal(self._plate_shape)

    def plate_at(self, scan: int) -> np.ndarray:
        """The plate image at scan ``scan`` (monotone colony growth)."""
        if scan < 0:
            raise ValueError("scan index must be non-negative")
        canvas = self._background.copy()
        p = self.specimen
        n_cells = self.growth.cells_at(scan)
        for idx, (cy, cx) in enumerate(self._sites):
            # Per-colony child RNG: placement independent of growth stage.
            rng = np.random.default_rng((self.seed, 1000 + idx))
            unit_offsets = rng.normal(0.0, 1.0, size=(self.growth.max_cells, 2))
            radii = rng.uniform(0.75, 1.35, size=self.growth.max_cells) * p.cell_radius
            angles = rng.uniform(0, np.pi, size=self.growth.max_cells)
            intensities = rng.uniform(0.6, 1.0, size=self.growth.max_cells) * p.cell_intensity
            for k in range(n_cells):
                # Placement frozen at birth: cells never move after scan t.
                spread = self.growth.radius_at(self.growth.birth_scan(k))
                patch = _cell_patch(radii[k], p.cell_eccentricity, angles[k], intensities[k])
                _splat(canvas, cy + unit_offsets[k, 0] * spread,
                       cx + unit_offsets[k, 1] * spread, patch)
        np.clip(canvas, 0.0, 1.0, out=canvas)
        return canvas

    def scan(self, scan: int) -> tuple[np.ndarray, np.ndarray]:
        """Acquire scan ``scan``: returns ``(tiles, true_positions)``.

        Stage error is independent per scan (fresh seed), exactly as a real
        stage re-approaches every position each period.
        """
        scope = VirtualMicroscope(
            stage=self.stage, camera=self.camera, seed=self.seed + 7919 * (scan + 1)
        )
        return scope.scan(self.plate_at(scan), self.plan, self.margin)

    def acquire(self, directory: str | Path, scans: int) -> Iterator[TileDataset]:
        """Write ``scans`` datasets under ``directory/scan_NNN`` lazily."""
        if scans < 1:
            raise ValueError("need at least one scan")
        directory = Path(directory)
        for t in range(scans):
            tiles, positions = self.scan(t)
            yield TileDataset.create(
                directory / f"scan_{t:03d}",
                tiles,
                overlap=self.plan.overlap,
                true_positions=positions,
                stage_model=self.stage.to_dict(),
            )
