"""Synthetic acquisition substrate (replaces the NIST A10 dataset).

The paper evaluates on a 42x59 grid of 1392x1040 16-bit tiles of A10 cell
colonies acquired on an Olympus IX71.  That dataset is not distributable
here, so this package builds the closest synthetic equivalent:

- :mod:`repro.synth.specimen` renders a plate-scale image of cell colonies
  (clustered soft-edged cells over a textured background), including the
  *sparse-feature* regime the paper highlights (low-density early-experiment
  plates) that defeats feature-based stitchers.
- :mod:`repro.synth.microscope` scans the plate into an overlapping tile
  grid through a stage-error model (per-move jitter, serpentine backlash)
  exactly like the mechanical effects the paper says make displacement
  computation necessary, and records ground-truth tile origins.
- :mod:`repro.synth.noise` applies camera effects (vignette flat-field,
  shot noise, read noise, 16-bit quantization).

Because ground truth is retained, tests can assert that the full stitching
pipeline recovers the stage's true translations -- something the real
dataset could never support.
"""

from repro.synth.microscope import ScanPlan, StageModel, VirtualMicroscope
from repro.synth.noise import CameraModel
from repro.synth.specimen import SpecimenParams, generate_plate
from repro.synth.dataset_factory import make_synthetic_dataset
from repro.synth.timeseries import GrowthModel, TimeSeriesExperiment

__all__ = [
    "ScanPlan",
    "StageModel",
    "VirtualMicroscope",
    "CameraModel",
    "SpecimenParams",
    "generate_plate",
    "make_synthetic_dataset",
    "GrowthModel",
    "TimeSeriesExperiment",
]
