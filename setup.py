"""Thin setup.py shim.

Kept alongside pyproject.toml so editable installs work in offline
environments lacking the `wheel` package (pip falls back to
`setup.py develop` with --no-use-pep517).
"""

from setuptools import setup

setup()
