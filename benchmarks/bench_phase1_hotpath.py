#!/usr/bin/env python
"""Phase-1 hot-path benchmark: half-spectrum FFTs + O(1) CCF + workspaces.

Measures the sequential displacement phase (the hot path every Table II
implementation shares) on a synthetic grid, twice:

``baseline``
    the pre-optimization configuration -- full complex (c2c) transforms,
    direct per-candidate CCF scans, fresh scratch allocations per pair;
``optimized``
    the defaults -- r2c half-spectrum transforms, summed-area-table CCF
    statistics, and the per-worker pair workspace.

Both runs must agree exactly on every translation (tx, ty) and to 1e-9 on
every correlation (the summed-area-table CCF evaluates the same Pearson r
in a different summation order); this is asserted.  The headline metric is
phase-1 **pairs/sec**, with per-stage seconds (read / fft / tilestats /
pair, from the tracer) and peak RSS recorded alongside.

The committed artifact ``BENCH_phase1.json`` at the repo root is the CI
regression reference: ``--check`` re-measures and fails when the
optimized-over-baseline speedup (a machine-independent normalization of
pairs/sec) regresses by more than ``--tolerance`` (default 20%) against
the committed value for the same mode.

Usage::

    python benchmarks/bench_phase1_hotpath.py          # full: 8x8 grid
    python benchmarks/bench_phase1_hotpath.py --quick  # CI-sized: 5x5 grid
    python benchmarks/bench_phase1_hotpath.py --quick --check
"""

from __future__ import annotations

import argparse
import resource
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from benchmarks._util import read_json, write_json  # noqa: E402

BENCH_PATH = REPO_ROOT / "BENCH_phase1.json"

#: (rows, cols, tile_px, repetitions) per mode.  512 px tiles keep the
#: numpy kernels (not python dispatch) dominant, approaching the regime of
#: the paper's 1392x1040 tiles while staying CI-friendly.
MODES = {
    "full": (8, 8, 512, 3),
    "quick": (5, 5, 256, 2),
}

STAGES = ("read", "fft", "tilestats", "pair")


def _load_tiles(rows: int, cols: int, tile: int, seed: int = 7):
    """Synthesize an acquisition and preload it (no I/O inside the timing)."""
    from repro.synth import make_synthetic_dataset

    with tempfile.TemporaryDirectory(prefix="bench_phase1_") as tmp:
        ds = make_synthetic_dataset(
            tmp, rows=rows, cols=cols, tile_height=tile, tile_width=tile,
            overlap=0.2, seed=seed,
        )
        return {
            (r, c): ds.load(r, c) for r in range(rows) for c in range(cols)
        }


def _run_once(tiles, rows, cols, *, real, stats, workspace):
    from repro.core.displacement import compute_grid_displacements
    from repro.core.pciam import CcfMode
    from repro.fftlib.plans import PlanCache
    from repro.observe import Tracer

    tracer = Tracer()
    t0 = time.perf_counter()
    # EXTENDED + 2 peaks is the CLI's default robustness configuration
    # (up to 16 CCF candidates per pair) -- the workload the O(1) CCF
    # statistics are built for.
    result = compute_grid_displacements(
        lambda r, c: tiles[(r, c)], rows, cols,
        ccf_mode=CcfMode.EXTENDED,
        n_peaks=2,
        real_transforms=real,
        use_tile_stats=stats,
        use_workspace=workspace,
        cache=PlanCache(),
        tracer=tracer,
    )
    seconds = time.perf_counter() - t0
    stage_seconds = {name: 0.0 for name in STAGES}
    for span in tracer.spans:
        if span.name in stage_seconds:
            stage_seconds[span.name] += span.duration
    return result, seconds, stage_seconds


def _translations(result):
    out = []
    for arr in (result.west, result.north):
        for row in arr:
            for t in row:
                out.append(None if t is None else (t.correlation, t.tx, t.ty))
    return out


def measure(mode: str) -> dict:
    rows, cols, tile, reps = MODES[mode]
    tiles = _load_tiles(rows, cols, tile)
    pairs = 2 * rows * cols - rows - cols
    configs = {
        "baseline": dict(real=False, stats=False, workspace=False),
        "optimized": dict(real=True, stats=True, workspace=True),
    }
    report: dict = {
        "mode": mode, "rows": rows, "cols": cols, "tile": tile,
        "pairs": pairs, "repetitions": reps,
    }
    outputs = {}
    for name, cfg in configs.items():
        best, best_stages, result = None, None, None
        for _ in range(reps):
            result, seconds, stage_seconds = _run_once(
                tiles, rows, cols, **cfg
            )
            if best is None or seconds < best:
                best, best_stages = seconds, stage_seconds
        outputs[name] = _translations(result)
        report[name] = {
            "seconds": round(best, 4),
            "pairs_per_sec": round(pairs / best, 2),
            "stage_seconds": {
                k: round(v, 4) for k, v in best_stages.items()
            },
            "peak_rss_mb": round(
                resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1
            ),
        }
    for a, b in zip(outputs["baseline"], outputs["optimized"]):
        if a is None and b is None:
            continue
        if a is None or b is None or a[1:] != b[1:] or abs(a[0] - b[0]) > 1e-9:
            raise AssertionError(
                "optimized run diverged from the complex-path baseline: "
                f"{a} vs {b} -- translations must match exactly, "
                "correlations to 1e-9"
            )
    report["identical_results"] = True
    report["speedup"] = round(
        report["optimized"]["pairs_per_sec"]
        / report["baseline"]["pairs_per_sec"], 3,
    )
    return report


def _print_report(report: dict) -> None:
    print(f"phase-1 hot path, {report['rows']}x{report['cols']} grid, "
          f"{report['tile']}px tiles, {report['pairs']} pairs "
          f"(best of {report['repetitions']}):")
    for name in ("baseline", "optimized"):
        r = report[name]
        stages = ", ".join(
            f"{k} {v:.3f}s" for k, v in r["stage_seconds"].items()
        )
        print(f"  {name:>9}: {r['pairs_per_sec']:8.1f} pairs/s "
              f"({r['seconds']:.3f}s; {stages}; rss {r['peak_rss_mb']} MB)")
    print(f"  speedup: {report['speedup']:.2f}x (identical results: "
          f"{report['identical_results']})")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="CI-sized run (smaller grid, fewer repetitions)")
    ap.add_argument("--check", action="store_true",
                    help="compare against the committed BENCH_phase1.json "
                         "instead of rewriting it; non-zero exit on a "
                         "speedup regression beyond --tolerance")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional speedup regression (default 0.20)")
    ap.add_argument("--output", type=Path, default=BENCH_PATH,
                    help=f"JSON artifact path (default {BENCH_PATH.name})")
    args = ap.parse_args(argv)

    mode = "quick" if args.quick else "full"
    report = measure(mode)
    _print_report(report)

    if args.check:
        committed = read_json(args.output) or {}
        ref = committed.get(mode)
        if ref is None:
            print(f"no committed `{mode}` entry in {args.output}; "
                  "run without --check first", file=sys.stderr)
            return 2
        floor = ref["speedup"] * (1.0 - args.tolerance)
        print(f"  committed speedup {ref['speedup']:.2f}x, regression floor "
              f"{floor:.2f}x, measured {report['speedup']:.2f}x")
        if report["speedup"] < floor:
            print("FAIL: phase-1 speedup regressed beyond tolerance",
                  file=sys.stderr)
            return 1
        print("OK: no regression")
        return 0

    merged = read_json(args.output) or {}
    merged[mode] = report
    write_json(args.output, merged)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
