#!/usr/bin/env python
"""Phase-1 hot-path benchmark: half-spectrum FFTs + O(1) CCF + workspaces.

Measures the sequential displacement phase (the hot path every Table II
implementation shares) on a synthetic grid, twice:

``baseline``
    the pre-optimization configuration -- full complex (c2c) transforms,
    direct per-candidate CCF scans, fresh scratch allocations per pair;
``optimized``
    the defaults -- r2c half-spectrum transforms, summed-area-table CCF
    statistics, and the per-worker pair workspace.

Both runs must agree exactly on every translation (tx, ty) and to 1e-9 on
every correlation (the summed-area-table CCF evaluates the same Pearson r
in a different summation order); this is asserted.  The headline metric is
phase-1 **pairs/sec**, with per-stage seconds (read / fft / tilestats /
pair, from the tracer) and peak RSS recorded alongside.

The committed artifact ``BENCH_phase1.json`` at the repo root is the CI
regression reference: ``--check`` re-measures and fails when the
optimized-over-baseline speedup (a machine-independent normalization of
pairs/sec) regresses by more than ``--tolerance`` (default 20%) against
the committed value for the same mode.

Usage::

    python benchmarks/bench_phase1_hotpath.py          # full: 8x8 grid
    python benchmarks/bench_phase1_hotpath.py --quick  # CI-sized: 5x5 grid
    python benchmarks/bench_phase1_hotpath.py --quick --check
"""

from __future__ import annotations

import argparse
import resource
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from benchmarks._util import read_json, write_json  # noqa: E402

BENCH_PATH = REPO_ROOT / "BENCH_phase1.json"

#: (rows, cols, tile_px, repetitions) per mode.  512 px tiles keep the
#: numpy kernels (not python dispatch) dominant, approaching the regime of
#: the paper's 1392x1040 tiles while staying CI-friendly.
MODES = {
    "full": (8, 8, 512, 5),
    "quick": (5, 5, 256, 2),
}

#: (rows, cols, tile_px) for the worker-scaling sweep.  Smaller tiles than
#: the hot-path bench: the sweep measures *architecture* (latency hiding
#: and band decomposition), so modeled I/O should dominate compute.
SWEEP_MODES = {
    "full": (8, 8, 128),
    "quick": (5, 5, 128),
}

#: Modeled per-read disk latency for the sweep: a paper-scale tile
#: (1392 x 1040 at 16-bit ~ 2.9 MB) from cold spinning storage at
#: ~75 MB/s is ~40 ms.  The synthetic tiles here are far smaller, so the
#: sweep injects this latency explicitly; parallel backends then earn
#: their speedup the same way they do at paper scale -- by overlapping
#: reads across bands -- rather than by exploiting an unrealistically hot
#: page cache.  (On a single-core CI runner the FFT/NCC compute cannot
#: parallelize at all, so latency hiding is also the only *honest* source
#: of speedup to measure there.)
SWEEP_READ_LATENCY = 0.04

SWEEP_WORKERS = (1, 2, 4, 8)

STAGES = ("read", "downsample", "fft", "tilestats", "pair")

#: Positional agreement required of the coarse-to-fine configuration:
#: RMS distance between its (tx, ty) and the optimized full-resolution
#: reference, in pixels.  The refinement walks to the full-resolution
#: integer peak, so on clean synthetic grids the RMS is exactly 0.
COARSE_RMS_LIMIT_PX = 0.5


class LatencyDataset:
    """Delegating dataset wrapper that models per-read disk latency."""

    def __init__(self, dataset, latency: float) -> None:
        self._dataset = dataset
        self._latency = latency

    def __getattr__(self, name):
        return getattr(self._dataset, name)

    def load(self, row: int, col: int):
        time.sleep(self._latency)
        return self._dataset.load(row, col)


def _load_tiles(rows: int, cols: int, tile: int, seed: int = 7):
    """Synthesize an acquisition and preload it (no I/O inside the timing)."""
    from repro.synth import make_synthetic_dataset

    with tempfile.TemporaryDirectory(prefix="bench_phase1_") as tmp:
        ds = make_synthetic_dataset(
            tmp, rows=rows, cols=cols, tile_height=tile, tile_width=tile,
            overlap=0.2, seed=seed,
        )
        return {
            (r, c): ds.load(r, c) for r in range(rows) for c in range(cols)
        }


def _run_once(tiles, rows, cols, *, real, stats, workspace, coarse=None):
    from repro.core.displacement import compute_grid_displacements
    from repro.core.pciam import CcfMode
    from repro.fftlib.plans import PlanCache
    from repro.observe import Tracer

    tracer = Tracer()
    t0 = time.perf_counter()
    # EXTENDED + 2 peaks is the CLI's default robustness configuration
    # (up to 16 CCF candidates per pair) -- the workload the O(1) CCF
    # statistics are built for.
    result = compute_grid_displacements(
        lambda r, c: tiles[(r, c)], rows, cols,
        ccf_mode=CcfMode.EXTENDED,
        n_peaks=2,
        real_transforms=real,
        use_tile_stats=stats,
        use_workspace=workspace,
        cache=PlanCache(),
        tracer=tracer,
        coarse=coarse,
    )
    seconds = time.perf_counter() - t0
    stage_seconds = {name: 0.0 for name in STAGES}
    for span in tracer.spans:
        if span.name in stage_seconds:
            stage_seconds[span.name] += span.duration
    return result, seconds, stage_seconds


def _translations(result):
    out = []
    for arr in (result.west, result.north):
        for row in arr:
            for t in row:
                out.append(None if t is None else (t.correlation, t.tx, t.ty))
    return out


def measure(mode: str) -> dict:
    import math

    from repro.core.coarse import CoarseConfig

    rows, cols, tile, reps = MODES[mode]
    tiles = _load_tiles(rows, cols, tile)
    pairs = 2 * rows * cols - rows - cols
    configs = {
        "baseline": dict(real=False, stats=False, workspace=False),
        "optimized": dict(real=True, stats=True, workspace=True),
        "coarse": dict(real=True, stats=True, workspace=True,
                       coarse=CoarseConfig()),
    }
    report: dict = {
        "mode": mode, "rows": rows, "cols": cols, "tile": tile,
        "pairs": pairs, "repetitions": reps,
    }
    outputs = {}
    # Round-robin the configurations within each repetition (rather than
    # all reps of one config back to back): every config samples the same
    # load profile of the host, so the config-to-config *ratios* -- what
    # the CI gates check -- are far more stable than the absolute times.
    best_of: dict[str, tuple] = {}
    results: dict = {}
    for _ in range(reps):
        for name, cfg in configs.items():
            result, seconds, stage_seconds = _run_once(
                tiles, rows, cols, **cfg
            )
            if name not in best_of or seconds < best_of[name][0]:
                best_of[name] = (seconds, stage_seconds)
            # Runs are deterministic: any repetition's result serves.
            results[name] = result
            outputs[name] = _translations(result)
    for name in configs:
        best, best_stages = best_of[name]
        result = results[name]
        report[name] = {
            "seconds": round(best, 4),
            "pairs_per_sec": round(pairs / best, 2),
            "stage_seconds": {
                k: round(v, 4) for k, v in best_stages.items()
            },
            "peak_rss_mb": round(
                resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024, 1
            ),
        }
        if name == "coarse":
            report[name]["coarse_hits"] = int(
                result.stats.get("coarse_hits", 0)
            )
            report[name]["full_fallbacks"] = int(
                result.stats.get("full_fallbacks", 0)
            )
    for a, b in zip(outputs["baseline"], outputs["optimized"]):
        if a is None and b is None:
            continue
        if a is None or b is None or a[1:] != b[1:] or abs(a[0] - b[0]) > 1e-9:
            raise AssertionError(
                "optimized run diverged from the complex-path baseline: "
                f"{a} vs {b} -- translations must match exactly, "
                "correlations to 1e-9"
            )
    report["identical_results"] = True
    report["speedup"] = round(
        report["optimized"]["pairs_per_sec"]
        / report["baseline"]["pairs_per_sec"], 3,
    )
    # Coarse-to-fine is allowed to disagree in *correlation* (its contest
    # probes a windowed subset of the full candidate set) but its
    # positions must track the full-resolution reference: RMS distance is
    # the accuracy metric the coarse gate enforces.
    sq, n = 0.0, 0
    for a, b in zip(outputs["optimized"], outputs["coarse"]):
        if a is None and b is None:
            continue
        if a is None or b is None:
            raise AssertionError(
                "coarse run dropped or added a pair vs optimized"
            )
        sq += (a[1] - b[1]) ** 2 + (a[2] - b[2]) ** 2
        n += 1
    report["coarse"]["rms_px_vs_optimized"] = round(math.sqrt(sq / n), 4)
    report["coarse"]["speedup_vs_optimized"] = round(
        report["coarse"]["pairs_per_sec"]
        / report["optimized"]["pairs_per_sec"], 3,
    )
    return report


def _disp_translations(displacements) -> list:
    class _Shim:
        west = displacements.west
        north = displacements.north

    return _translations(_Shim)


def measure_sweep(mode: str, workers: tuple[int, ...] = SWEEP_WORKERS,
                  latency: float = SWEEP_READ_LATENCY) -> dict:
    """Worker-scaling sweep: threads (mt-cpu) vs processes (proc-cpu).

    Every run is checked bit-identical to the simple-cpu reference before
    its throughput counts.  Latency hiding is the mechanism under test --
    see :data:`SWEEP_READ_LATENCY`.
    """
    from repro.impls import MtCpu, ProcCpu, SimpleCpu
    from repro.io.dataset import TileDataset
    from repro.synth import make_synthetic_dataset

    rows, cols, tile = SWEEP_MODES[mode]
    pairs = 2 * rows * cols - rows - cols

    with tempfile.TemporaryDirectory(prefix="bench_sweep_") as tmp:
        make_synthetic_dataset(
            tmp, rows=rows, cols=cols, tile_height=tile, tile_width=tile,
            overlap=0.2, seed=7,
        )
        dataset = LatencyDataset(TileDataset(tmp), latency)

        def timed(impl):
            t0 = time.perf_counter()
            run = impl.run(dataset)
            seconds = time.perf_counter() - t0
            return run, seconds

        ref_run, ref_seconds = timed(SimpleCpu())
        reference = _disp_translations(ref_run.displacements)
        report: dict = {
            "mode": mode, "rows": rows, "cols": cols, "tile": tile,
            "pairs": pairs, "read_latency": latency,
            "workers": list(workers),
            "simple_cpu": {
                "seconds": round(ref_seconds, 3),
                "pairs_per_sec": round(pairs / ref_seconds, 2),
            },
            "threads": {}, "processes": {},
        }
        curves = {
            "threads": lambda w: MtCpu(workers=w),
            "processes": lambda w: ProcCpu(workers=w, fft_batch=4),
        }
        for curve, make in curves.items():
            for w in workers:
                run, seconds = timed(make(w))
                got = _disp_translations(run.displacements)
                if got != reference:
                    raise AssertionError(
                        f"{curve} sweep at {w} workers diverged from the "
                        "simple-cpu reference -- positions must be "
                        "bit-identical"
                    )
                report[curve][str(w)] = {
                    "seconds": round(seconds, 3),
                    "pairs_per_sec": round(pairs / seconds, 2),
                }
        for curve in curves:
            base = report[curve][str(workers[0])]["pairs_per_sec"]
            for w in workers:
                entry = report[curve][str(w)]
                entry["speedup_vs_1w"] = round(
                    entry["pairs_per_sec"] / base, 2
                )
        report["identical_results"] = True
    return report


def _print_sweep(report: dict) -> None:
    print(f"worker-scaling sweep, {report['rows']}x{report['cols']} grid, "
          f"{report['tile']}px tiles, {report['pairs']} pairs, "
          f"{report['read_latency'] * 1000:.0f} ms modeled read latency:")
    r = report["simple_cpu"]
    print(f"  {'simple-cpu':>10}:       {r['pairs_per_sec']:8.1f} pairs/s "
          f"({r['seconds']:.3f}s)")
    for curve in ("threads", "processes"):
        for w in report["workers"]:
            e = report[curve][str(w)]
            print(f"  {curve:>10}: w={w:<2d}  {e['pairs_per_sec']:8.1f} pairs/s "
                  f"({e['seconds']:.3f}s, {e['speedup_vs_1w']:.2f}x vs 1w)")
    print(f"  identical results: {report['identical_results']}")


def _print_report(report: dict) -> None:
    print(f"phase-1 hot path, {report['rows']}x{report['cols']} grid, "
          f"{report['tile']}px tiles, {report['pairs']} pairs "
          f"(best of {report['repetitions']}):")
    for name in ("baseline", "optimized", "coarse"):
        r = report[name]
        stages = ", ".join(
            f"{k} {v:.3f}s" for k, v in r["stage_seconds"].items() if v
        )
        print(f"  {name:>9}: {r['pairs_per_sec']:8.1f} pairs/s "
              f"({r['seconds']:.3f}s; {stages}; rss {r['peak_rss_mb']} MB)")
    print(f"  speedup: {report['speedup']:.2f}x (identical results: "
          f"{report['identical_results']})")
    c = report["coarse"]
    print(f"  coarse: {c['speedup_vs_optimized']:.2f}x vs optimized, "
          f"{c['coarse_hits']} hits / {c['full_fallbacks']} fallbacks, "
          f"rms {c['rms_px_vs_optimized']:.3f} px")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="CI-sized run (smaller grid, fewer repetitions)")
    ap.add_argument("--check", action="store_true",
                    help="compare against the committed BENCH_phase1.json "
                         "instead of rewriting it; non-zero exit on a "
                         "speedup regression beyond --tolerance")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional speedup regression (default 0.20)")
    ap.add_argument("--output", type=Path, default=BENCH_PATH,
                    help=f"JSON artifact path (default {BENCH_PATH.name})")
    ap.add_argument("--sweep", action="store_true",
                    help="run the worker-scaling sweep (threads vs "
                         "processes) instead of the hot-path bench")
    ap.add_argument("--sweep-workers", type=str, default=None,
                    metavar="N,N,...",
                    help="comma-separated worker counts for --sweep "
                         f"(default {','.join(map(str, SWEEP_WORKERS))})")
    ap.add_argument("--gate", type=float, default=None, metavar="X",
                    help="with --sweep: fail unless proc-cpu at the highest "
                         "swept worker count reaches X times simple-cpu "
                         "pairs/sec (CI gate; skips rewriting the artifact)")
    ap.add_argument("--coarse-gate", type=float, default=None, metavar="X",
                    help="fail unless the coarse-to-fine configuration "
                         "reaches X times the optimized pairs/sec AND its "
                         f"positions stay within {COARSE_RMS_LIMIT_PX} px "
                         "RMS of the full-resolution reference (CI gate; "
                         "skips rewriting the artifact).  Use the full "
                         "geometry: coarse-to-fine only pays off at "
                         "paper-scale tile sizes, so --quick measures the "
                         "wrong regime")
    args = ap.parse_args(argv)

    mode = "quick" if args.quick else "full"

    if args.sweep:
        workers = SWEEP_WORKERS
        if args.sweep_workers:
            workers = tuple(
                int(tok) for tok in args.sweep_workers.split(",") if tok
            )
        report = measure_sweep(mode, workers=workers)
        _print_sweep(report)
        if args.gate is not None:
            top = str(max(workers))
            got = report["processes"][top]["pairs_per_sec"]
            base = report["simple_cpu"]["pairs_per_sec"]
            ratio = got / base
            print(f"  gate: proc-cpu at {top} workers is {ratio:.2f}x "
                  f"simple-cpu (need >= {args.gate:.2f}x)")
            if ratio < args.gate:
                print("FAIL: proc-cpu scaling gate not met", file=sys.stderr)
                return 1
            print("OK: scaling gate met")
            return 0
        merged = read_json(args.output) or {}
        merged[f"sweep_{mode}"] = report
        write_json(args.output, merged)
        print(f"wrote {args.output}")
        return 0

    report = measure(mode)
    _print_report(report)

    if args.coarse_gate is not None:
        c = report["coarse"]
        ok = True
        print(f"  coarse gate: {c['speedup_vs_optimized']:.2f}x vs "
              f"optimized (need >= {args.coarse_gate:.2f}x), rms "
              f"{c['rms_px_vs_optimized']:.3f} px "
              f"(limit {COARSE_RMS_LIMIT_PX})")
        if c["speedup_vs_optimized"] < args.coarse_gate:
            print("FAIL: coarse-to-fine speedup gate not met",
                  file=sys.stderr)
            ok = False
        if c["rms_px_vs_optimized"] > COARSE_RMS_LIMIT_PX:
            print("FAIL: coarse-to-fine positions drifted beyond "
                  f"{COARSE_RMS_LIMIT_PX} px RMS", file=sys.stderr)
            ok = False
        if not ok:
            return 1
        print("OK: coarse gate met")
        return 0

    if args.check:
        committed = read_json(args.output) or {}
        ref = committed.get(mode)
        if ref is None:
            print(f"no committed `{mode}` entry in {args.output}; "
                  "run without --check first", file=sys.stderr)
            return 2
        floor = ref["speedup"] * (1.0 - args.tolerance)
        print(f"  committed speedup {ref['speedup']:.2f}x, regression floor "
              f"{floor:.2f}x, measured {report['speedup']:.2f}x")
        if report["speedup"] < floor:
            print("FAIL: phase-1 speedup regressed beyond tolerance",
                  file=sys.stderr)
            return 1
        print("OK: no regression")
        return 0

    merged = read_json(args.output) or {}
    merged[mode] = report
    write_json(args.output, merged)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
