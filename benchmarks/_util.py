"""Shared benchmark-harness helpers.

Every table/figure bench writes its regenerated rows to
``benchmarks/results/<name>.txt`` *and* prints them, so both interactive
(``pytest benchmarks/ --benchmark-only -s``) and archived output exist.
"""

from __future__ import annotations

import json
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")


def write_json(path: Path, obj: dict) -> None:
    """Stable-format JSON artifact (committed files diff cleanly)."""
    Path(path).write_text(json.dumps(obj, indent=2, sort_keys=True) + "\n")


def read_json(path: Path) -> dict | None:
    p = Path(path)
    if not p.exists():
        return None
    return json.loads(p.read_text())


def once(benchmark, fn):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
