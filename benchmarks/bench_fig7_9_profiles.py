"""Figs. 7 & 9: execution profiles of Simple-GPU vs Pipelined-GPU (8x8 grid).

The paper shows nvvp screenshots; the measurable content is the kernel
row's density -- sparse with gaps under synchronous dispatch (Fig. 7),
saturated under the pipeline (Fig. 9) -- and the ~10x makespan gap on the
same 8x8 workload (15.9 s vs 1.6 s in the paper).

Both the deterministic DES profile and the *real* virtual-GPU trace from
actually running the two implementations are reported.
"""

import pytest

from benchmarks._util import emit, once
from repro.analysis.report import format_table
from repro.impls import PipelinedGpu, SimpleGpu
from repro.gpu.device import VirtualGpu
from repro.simulate.experiments import fig7_fig9_profiles
from repro.synth import make_synthetic_dataset


def test_fig7_fig9_des_profiles(benchmark):
    data = once(benchmark, fig7_fig9_profiles)
    text = format_table(
        ["implementation", "makespan (s)", "kernel density", "kernels"],
        [
            ["simple-gpu (Fig. 7)", round(data["simple-gpu"]["makespan"], 2),
             round(data["simple-gpu"]["kernel_density"], 3),
             data["simple-gpu"]["kernel_count"]],
            ["pipelined-gpu (Fig. 9)", round(data["pipelined-gpu"]["makespan"], 2),
             round(data["pipelined-gpu"]["kernel_density"], 3),
             data["pipelined-gpu"]["kernel_count"]],
        ],
        title=(
            "Figs. 7 & 9 -- 8x8-grid profiles (paper: 15.9 s vs 1.6 s; "
            f"simulated speedup {data['speedup']:.1f}x, paper ~10x)"
        ),
    )
    emit("fig7_9_profiles", text)
    assert data["simple-gpu"]["kernel_density"] < 0.3
    assert data["pipelined-gpu"]["kernel_density"] > 0.9
    assert 8 < data["speedup"] < 15


def test_fig7_real_simple_gpu_trace(benchmark, tmp_path_factory):
    ds = make_synthetic_dataset(
        tmp_path_factory.mktemp("f7"), rows=8, cols=8,
        tile_height=48, tile_width=48, overlap=0.2, seed=7,
    )
    impl = SimpleGpu()
    once(benchmark, lambda: impl.run(ds))
    density = impl.last_device.profiler.density("compute")
    assert density < 0.6  # the Fig. 7 gaps exist in the real trace too
    assert len(impl.last_device.profiler.streams_used() - {-1}) == 1


def test_fig9_real_pipelined_gpu_uses_three_streams(benchmark, tmp_path_factory):
    ds = make_synthetic_dataset(
        tmp_path_factory.mktemp("f9"), rows=8, cols=8,
        tile_height=48, tile_width=48, overlap=0.2, seed=9,
    )
    dev = VirtualGpu()
    once(benchmark, lambda: PipelinedGpu(devices=[dev]).run(ds))
    assert len(dev.profiler.streams_used()) == 3
