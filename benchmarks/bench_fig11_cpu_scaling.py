"""Fig. 11: strong scaling of Pipelined-CPU, threads 1-16.

Paper: near-linear speedup up to the 8 physical cores, then a much
shallower slope through the hyper-threaded region to ~7.5x at 16 threads
(the Table II Pipelined-CPU speedup), finishing near 84 s.
"""

import pytest

from benchmarks._util import emit, once
from repro.analysis.report import format_series
from repro.simulate.experiments import fig11_cpu_scaling


def test_fig11_cpu_scaling(benchmark):
    rows = once(benchmark, fig11_cpu_scaling)
    text = format_series(
        "threads", "seconds",
        [(t, round(s, 1), round(sp, 2)) for t, s, sp in rows],
        title="Fig. 11 -- Pipelined-CPU scaling, 42x59 grid (3rd col: speedup)",
    )
    emit("fig11_cpu_scaling", text)

    by_t = {t: sp for t, _, sp in rows}
    assert by_t[8] > 6.5                      # near-linear to physical cores
    slope_lo = (by_t[8] - by_t[4]) / 4
    slope_hi = (by_t[16] - by_t[8]) / 8
    assert slope_hi < 0.3 * slope_lo          # two-slope shape
    assert rows[-1][1] == pytest.approx(84, rel=0.15)
