"""Scalability sweeps for the abstract's headline claim.

"Our implementation scales well with both image sizes and the number of
CPU cores and GPU cards in a machine."  Table II and Figs. 10-12 cover the
core/GPU axes; this bench pins the remaining two axes explicitly:

- **grid-size scaling** (more tiles): end-to-end time must grow linearly
  in the pair count (no super-linear memory or scheduling blow-up);
- **tile-size scaling** (bigger images): time must track the
  ``hw log(hw)`` transform cost, not worse.
"""

import pytest

from benchmarks._util import emit, once
from repro.analysis.report import format_series
from repro.simulate.costmodel import PAPER_MACHINE
from repro.simulate.schedules import simulate_pipelined_cpu, simulate_pipelined_gpu


def test_grid_size_scaling(benchmark):
    grids = [(8, 16), (16, 16), (16, 32), (32, 32), (42, 59)]

    def run():
        out = []
        for rows, cols in grids:
            pairs = 2 * rows * cols - rows - cols
            gpu = simulate_pipelined_gpu(PAPER_MACHINE, rows, cols, 2).makespan_seconds
            cpu = simulate_pipelined_cpu(PAPER_MACHINE, rows, cols, 16).makespan_seconds
            out.append((pairs, gpu, cpu))
        return out

    rows = once(benchmark, run)
    text = format_series(
        "pairs", "gpu_s", [(p, round(g, 2), round(c, 1)) for p, g, c in rows],
        title="Grid-size scaling, Pipelined-GPU x2 (3rd col: Pipelined-CPU 16t)",
    )
    emit("scalability_grid", text)
    # Linearity: seconds-per-pair stays within a tight band (< 10 % spread)
    # as the grid grows 18x -- no super-linear blow-up anywhere.
    per_pair = [g / p for p, g, _ in rows]
    assert max(per_pair) / min(per_pair) < 1.10
    per_pair_cpu = [c / p for p, _, c in rows]
    assert max(per_pair_cpu) / min(per_pair_cpu) < 1.10


def test_tile_size_scaling(benchmark):
    import math

    sizes = [(520, 696), (1040, 1392), (2080, 2784)]  # 1/4x, 1x, 4x area

    def run():
        return [
            (h * w, simulate_pipelined_gpu(
                PAPER_MACHINE, 16, 16, 1, tile=(h, w)
            ).makespan_seconds)
            for h, w in sizes
        ]

    rows = once(benchmark, run)
    text = format_series(
        "pixels", "seconds", [(hw, round(s, 2)) for hw, s in rows],
        title="Tile-size scaling, Pipelined-GPU x1, 16x16 grid",
    )
    emit("scalability_tile", text)
    # Time per (hw log hw) unit constant within 20 % across 16x in area.
    units = [s / (hw * math.log2(hw)) for hw, s in rows]
    assert max(units) / min(units) < 1.2
