"""Figs. 13 & 14: the composed mosaic (overlay blend; highlighted tiles).

The paper renders its 42x59 grid to a 17k x 22k image.  Here a scaled
synthetic plate is stitched end-to-end and composed both ways; the mosaics
are written to ``benchmarks/results/`` as TIFFs and scored against the
known plate (position recovery must be exact for the render to be valid).
"""

import numpy as np
import pytest

from benchmarks._util import RESULTS_DIR, emit, once
from repro.core.compose import BlendMode
from repro.core.stitcher import Stitcher
from repro.io.tiff import write_tiff
from repro.synth import make_synthetic_dataset


@pytest.fixture(scope="module")
def stitched(tmp_path_factory):
    ds = make_synthetic_dataset(
        tmp_path_factory.mktemp("f13"), rows=7, cols=10,
        tile_height=96, tile_width=96, overlap=0.12, seed=13,
    )
    res = Stitcher().stitch(ds)
    assert res.position_errors().max() == 0.0
    return ds, res


def _to_uint16(mosaic: np.ndarray) -> np.ndarray:
    top = float(mosaic.max()) or 1.0
    return (np.clip(mosaic / top, 0, 1) * 65535).astype(np.uint16)


def test_fig13_overlay_mosaic(benchmark, stitched):
    ds, res = stitched

    mosaic = once(benchmark, lambda: res.compose(BlendMode.OVERLAY))
    RESULTS_DIR.mkdir(exist_ok=True)
    write_tiff(RESULTS_DIR / "fig13_mosaic_overlay.tif", _to_uint16(mosaic))
    h, w = mosaic.shape
    emit(
        "fig13_overlay",
        f"Fig. 13 -- overlay-blend mosaic rendered: {h}x{w} px "
        f"(paper: 17k x 22k from its 42x59 grid)\n"
        f"positions recovered exactly: True\n"
        f"saved: benchmarks/results/fig13_mosaic_overlay.tif",
    )
    assert mosaic.shape == res.positions.mosaic_shape(ds.tile_shape)


def test_fig14_highlighted_tiles(benchmark, stitched):
    ds, res = stitched

    mosaic = once(
        benchmark, lambda: res.compose(BlendMode.OVERLAY, outline=True)
    )
    write_tiff(RESULTS_DIR / "fig14_mosaic_outlined.tif", _to_uint16(mosaic))
    # Outlines exist: the brightest value traces tile borders.
    y, x = (int(v) for v in res.positions.positions[3, 4])
    assert mosaic[y, x + 5] == mosaic.max()
    emit(
        "fig14_outlined",
        "Fig. 14 -- mosaic with highlighted tile borders rendered\n"
        "saved: benchmarks/results/fig14_mosaic_outlined.tif",
    )


def test_compose_and_render_without_saving(benchmark, stitched):
    """The paper also reports composing + rendering without saving (15 s
    at paper scale); here the in-memory compose path alone is timed."""
    _, res = stitched
    mosaic = once(benchmark, lambda: res.compose(BlendMode.LINEAR))
    assert np.isfinite(mosaic).all()
