"""Figs. 13 & 14: the composed mosaic (overlay blend; highlighted tiles).

The paper renders its 42x59 grid to a 17k x 22k image.  Here a scaled
synthetic plate is stitched end-to-end and composed both ways; the mosaics
are written to ``benchmarks/results/`` as TIFFs and scored against the
known plate (position recovery must be exact for the render to be valid).

Run as a script to benchmark out-of-core composition -- in-memory vs
streaming at two memory budgets -- and write ``BENCH_compose.json`` at
the repo root (the committed regression reference)::

    python benchmarks/bench_fig13_14_compose.py           # full grid
    python benchmarks/bench_fig13_14_compose.py --quick
    python benchmarks/bench_fig13_14_compose.py --quick --check
"""

import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

import numpy as np
import pytest

from benchmarks._util import RESULTS_DIR, emit, once, read_json, write_json
from repro.core.compose import BlendMode
from repro.core.stitcher import Stitcher
from repro.io.tiff import read_tiff, write_tiff
from repro.synth import make_synthetic_dataset

BENCH_COMPOSE_PATH = REPO_ROOT / "BENCH_compose.json"

#: (rows, cols, tile_px) per mode for the out-of-core comparison.
COMPOSE_MODES = {
    "full": (8, 8, 256),
    "quick": (6, 6, 192),  # big enough that per-stripe overhead amortizes
}

#: Streaming budgets as fractions of the full-resolution working set:
#: budget = in-memory peak // fraction, so every run is genuinely
#: over-budget (the canvas cannot fit) at two different severities.
BUDGET_FRACTIONS = (4, 16)

#: Acceptance floor: streaming throughput at the *looser* budget must be
#: within 25% of the in-memory path (same single compose worker).
THROUGHPUT_FLOOR = 0.75


@pytest.fixture(scope="module")
def stitched(tmp_path_factory):
    ds = make_synthetic_dataset(
        tmp_path_factory.mktemp("f13"), rows=7, cols=10,
        tile_height=96, tile_width=96, overlap=0.12, seed=13,
    )
    res = Stitcher().stitch(ds)
    assert res.position_errors().max() == 0.0
    return ds, res


def _to_uint16(mosaic: np.ndarray) -> np.ndarray:
    top = float(mosaic.max()) or 1.0
    return (np.clip(mosaic / top, 0, 1) * 65535).astype(np.uint16)


def test_fig13_overlay_mosaic(benchmark, stitched):
    ds, res = stitched

    mosaic = once(benchmark, lambda: res.compose(BlendMode.OVERLAY))
    RESULTS_DIR.mkdir(exist_ok=True)
    write_tiff(RESULTS_DIR / "fig13_mosaic_overlay.tif", _to_uint16(mosaic))
    h, w = mosaic.shape
    emit(
        "fig13_overlay",
        f"Fig. 13 -- overlay-blend mosaic rendered: {h}x{w} px "
        f"(paper: 17k x 22k from its 42x59 grid)\n"
        f"positions recovered exactly: True\n"
        f"saved: benchmarks/results/fig13_mosaic_overlay.tif",
    )
    assert mosaic.shape == res.positions.mosaic_shape(ds.tile_shape)


def test_fig14_highlighted_tiles(benchmark, stitched):
    ds, res = stitched

    mosaic = once(
        benchmark, lambda: res.compose(BlendMode.OVERLAY, outline=True)
    )
    write_tiff(RESULTS_DIR / "fig14_mosaic_outlined.tif", _to_uint16(mosaic))
    # Outlines exist: the brightest value traces tile borders.
    y, x = (int(v) for v in res.positions.positions[3, 4])
    assert mosaic[y, x + 5] == mosaic.max()
    emit(
        "fig14_outlined",
        "Fig. 14 -- mosaic with highlighted tile borders rendered\n"
        "saved: benchmarks/results/fig14_mosaic_outlined.tif",
    )


def test_compose_and_render_without_saving(benchmark, stitched):
    """The paper also reports composing + rendering without saving (15 s
    at paper scale); here the in-memory compose path alone is timed."""
    _, res = stitched
    mosaic = once(benchmark, lambda: res.compose(BlendMode.LINEAR))
    assert np.isfinite(mosaic).all()


# ---------------------------------------------------------------------------
# Out-of-core composition: in-memory vs streaming at bounded budgets.


def _measure_compose(ds, res, out_dir: Path) -> dict:
    """Time in-memory vs streaming compose-to-TIFF and report peak bytes.

    Both paths run single-worker, LINEAR blend (the heaviest working set:
    canvas + weight accumulator), write uint16, and must agree bit for
    bit.  The in-memory peak is the analytic working set -- float64
    canvas, float64 weights, uint16 output copy; the streaming peak is
    tracked live by the composer (band + weight + output stripe + tile
    cache).
    """
    h, w = res.positions.mosaic_shape(ds.tile_shape)
    mpix = h * w / 1e6
    record = {
        "blend": "linear",
        "canvas": [h, w],
        "mpix": round(mpix, 3),
        "grid": [ds.rows, ds.cols],
    }

    t0 = time.perf_counter()
    mosaic = res.compose(BlendMode.LINEAR, dtype=np.float64)
    reference = np.clip(mosaic, 0, 65535).astype(np.uint16)
    write_tiff(out_dir / "inmem.tif", reference)
    in_secs = time.perf_counter() - t0
    in_peak = h * w * (8 + 8 + 2)  # canvas + weight + uint16 copy
    del mosaic
    record["in_memory"] = {
        "seconds": round(in_secs, 4),
        "mpix_per_sec": round(mpix / in_secs, 3),
        "peak_canvas_bytes": in_peak,
    }

    record["streaming"] = []
    for frac in BUDGET_FRACTIONS:
        budget = in_peak // frac
        path = out_dir / f"stream-{frac}.tif"
        t0 = time.perf_counter()
        sres = res.compose_to_tiff(path, blend=BlendMode.LINEAR,
                                   memory_budget=budget)
        st_secs = time.perf_counter() - t0
        assert sres.peak_bytes <= budget, (
            f"streaming peak {sres.peak_bytes} exceeds budget {budget}")
        assert np.array_equal(read_tiff(path), reference), (
            f"streamed mosaic at budget //{frac} is not bit-identical")
        cache = sres.cache or {}
        record["streaming"].append({
            "budget_bytes": budget,
            "budget_fraction_of_in_memory": f"1/{frac}",
            "seconds": round(st_secs, 4),
            "mpix_per_sec": round(mpix / st_secs, 3),
            "throughput_vs_in_memory": round(in_secs / st_secs, 3),
            "peak_canvas_plus_cache_bytes": sres.peak_bytes,
            "stripes": sres.stripes,
            "band_rows": sres.band_rows,
            "cache_hits": cache.get("hits", 0),
            "cache_misses": cache.get("misses", 0),
            "cache_evictions": cache.get("evictions", 0),
        })
    return record


def _run_compose_bench(mode: str) -> dict:
    import tempfile

    rows, cols, tile = COMPOSE_MODES[mode]
    with tempfile.TemporaryDirectory(prefix="bench_compose_") as tmp:
        tmp = Path(tmp)
        ds = make_synthetic_dataset(
            tmp / "ds", rows=rows, cols=cols, tile_height=tile,
            tile_width=tile, overlap=0.12, seed=13,
        )
        res = Stitcher().stitch(ds)
        record = _measure_compose(ds, res, tmp)
    record["mode"] = mode
    return record


def test_out_of_core_compose_peaks(stitched, tmp_path):
    """Streaming stays under both budgets and matches in-memory exactly."""
    ds, res = stitched
    record = _measure_compose(ds, res, tmp_path)
    lines = [
        f"out-of-core compose -- {record['canvas'][0]}x"
        f"{record['canvas'][1]} px ({record['mpix']} MPix), linear blend",
        f"in-memory: {record['in_memory']['mpix_per_sec']} MPix/s, "
        f"peak {record['in_memory']['peak_canvas_bytes']:,} B",
    ]
    for s in record["streaming"]:
        lines.append(
            f"streaming @ {s['budget_fraction_of_in_memory']} budget "
            f"({s['budget_bytes']:,} B): {s['mpix_per_sec']} MPix/s, "
            f"peak {s['peak_canvas_plus_cache_bytes']:,} B, "
            f"{s['stripes']} stripes x {s['band_rows']} rows, "
            f"cache {s['cache_hits']}h/{s['cache_misses']}m"
        )
    emit("fig13_out_of_core", "\n".join(lines))
    for s in record["streaming"]:
        assert s["peak_canvas_plus_cache_bytes"] <= s["budget_bytes"]


def main(argv=None) -> int:
    import argparse

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="CI-sized grid instead of the full one")
    ap.add_argument("--check", action="store_true",
                    help="compare against the committed BENCH_compose.json "
                         "instead of overwriting it")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed relative throughput regression in --check")
    args = ap.parse_args(argv)

    mode = "quick" if args.quick else "full"
    record = _run_compose_bench(mode)

    loose = record["streaming"][0]
    ratio = loose["throughput_vs_in_memory"]
    print(f"canvas {record['canvas'][0]}x{record['canvas'][1]} "
          f"({record['mpix']} MPix), in-memory "
          f"{record['in_memory']['mpix_per_sec']} MPix/s "
          f"(peak {record['in_memory']['peak_canvas_bytes']:,} B)")
    for s in record["streaming"]:
        print(f"  streaming @ {s['budget_fraction_of_in_memory']}: "
              f"{s['mpix_per_sec']} MPix/s "
              f"({s['throughput_vs_in_memory']:.2f}x in-memory), "
              f"peak {s['peak_canvas_plus_cache_bytes']:,} "
              f"<= {s['budget_bytes']:,} B")

    if ratio < THROUGHPUT_FLOOR:
        print(f"FAIL: streaming at the loose budget is {ratio:.2f}x "
              f"in-memory (floor {THROUGHPUT_FLOOR})")
        return 1

    if args.check:
        committed = (read_json(BENCH_COMPOSE_PATH) or {}).get(mode)
        if committed is None:
            print(f"no committed {BENCH_COMPOSE_PATH.name} entry for mode "
                  f"'{mode}'; rerun without --check to create it")
            return 1
        ref = committed["streaming"][0]["throughput_vs_in_memory"]
        if ratio < ref * (1.0 - args.tolerance):
            print(f"FAIL: throughput ratio {ratio:.3f} regressed more than "
                  f"{args.tolerance:.0%} vs committed {ref:.3f}")
            return 1
        print(f"OK: ratio {ratio:.3f} vs committed {ref:.3f} "
              f"(tolerance {args.tolerance:.0%})")
        return 0

    merged = read_json(BENCH_COMPOSE_PATH) or {}
    merged[mode] = record
    write_json(BENCH_COMPOSE_PATH, merged)
    print(f"wrote {BENCH_COMPOSE_PATH} ({mode})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
