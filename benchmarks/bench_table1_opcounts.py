"""Table I: operation counts & complexities.

Regenerates the analytic table for the paper's 42x59 / 1392x1040 workload
and validates it against an instrumented run of the reference
implementation on a small grid (counts are exact functions of grid size,
so small-grid verification covers the formulas).
"""

import pytest

from benchmarks._util import emit, once
from repro.analysis.opcounts import OperationCounts, table1_counts, verify_against_run
from repro.analysis.report import format_table
from repro.impls import SimpleCpu
from repro.synth import make_synthetic_dataset


def test_table1_analytic(benchmark):
    def run():
        return table1_counts(42, 59, 1040, 1392)

    rows = once(benchmark, run)
    c = OperationCounts(42, 59, 1040, 1392)
    text = format_table(
        ["operation", "count", "cost", "operand_bytes"],
        [[r["operation"], r["count"], r["cost"], r["operand_bytes"]] for r in rows],
        title="Table I -- operation counts for the 42x59 grid of 1392x1040 tiles",
    )
    text += (
        f"\n\ntotal transforms (3nm-n-m): {c.total_transforms}"
        f"\nforward-transform footprint: {c.forward_transform_total_bytes() / 1e9:.1f} GB"
        f" (paper: ~53.5 GB with its rounding of 'nearly 22 MB' per transform)"
    )
    emit("table1_opcounts", text)
    assert c.pairs == 4855


def test_table1_matches_instrumented_run(tmp_path, benchmark):
    ds = make_synthetic_dataset(
        tmp_path / "ds", rows=4, cols=5, tile_height=48, tile_width=48,
        overlap=0.25, seed=1,
    )

    res = once(benchmark, lambda: SimpleCpu().run(ds))
    checks = verify_against_run(OperationCounts(4, 5, 48, 48), res.stats)
    assert checks and all(checks.values())
