"""Fig. 10: Pipelined-GPU (2 GPUs) run time vs CCF thread count.

Paper: time drops from ~42 s at 1 thread to ~28 s at 2, then is nearly
flat -- "performance is limited by GPU computations".
"""

from benchmarks._util import emit, once
from repro.analysis.report import format_series
from repro.simulate.experiments import fig10_ccf_threads


def test_fig10_ccf_threads(benchmark):
    series = once(benchmark, fig10_ccf_threads)
    text = format_series(
        "ccf_threads", "seconds", [(t, round(s, 1)) for t, s in series],
        title="Fig. 10 -- Pipelined-GPU (2 GPUs) vs CCF threads, 42x59 grid",
    )
    emit("fig10_ccf_threads", text)

    times = dict(series)
    assert times[1] > 1.3 * times[2]          # 1 thread is CCF-bound
    assert times[2] / times[16] < 1.35        # flat beyond ~2
    assert all(times[t] >= times[t + 1] - 1e-9 for t in range(1, 16))
