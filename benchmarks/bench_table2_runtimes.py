"""Table II: run times and speedups for the 42x59 grid.

Two parts:

1. **Paper scale** (DES): the 42x59 x 1392x1040 workload on the modeled
   evaluation machine, all seven rows, with the published numbers printed
   alongside for comparison.  Also the Section VI laptop validation.
2. **Real execution** (small scale): every implementation actually runs on
   a synthetic 6x6 dataset in this container; wall times are reported by
   pytest-benchmark.  (This container has one CPU core, so real parallel
   speedups are not observable here -- the DES carries the scaling claims.)
"""

import pytest

from benchmarks._util import emit, once
from repro.analysis.report import format_table
from repro.impls import ALL_IMPLEMENTATIONS
from repro.simulate.costmodel import LAPTOP
from repro.simulate.experiments import PAPER_TABLE2, table2_runtimes
from repro.simulate.schedules import simulate_pipelined_cpu, simulate_pipelined_gpu
from repro.synth import make_synthetic_dataset


def test_table2_paper_scale(benchmark):
    from repro.analysis.steerability import steerability

    rows = once(benchmark, table2_runtimes)
    text = format_table(
        ["implementation", "time (s)", "S/CPU", "S/ImageJ", "threads", "GPUs",
         "paper (s)", "steerable@45min"],
        [
            [
                r.implementation,
                round(r.seconds, 1),
                round(r.speedup_vs_simple_cpu, 1),
                round(r.speedup_vs_imagej, 1),
                r.cpu_threads if r.cpu_threads else "-",
                r.gpus if r.gpus else "-",
                round(r.paper_seconds, 1),
                "yes" if steerability(r.seconds, analysis_seconds=600).steerable
                else "NO",
            ]
            for r in rows
        ],
        title="Table II -- run times & speedups, 42x59 grid (simulated machine)",
    )
    emit("table2_runtimes", text)
    by_name = {r.implementation: r for r in rows}
    # Paper ordering must hold.
    assert by_name["pipelined-gpu-2"].seconds < by_name["pipelined-gpu-1"].seconds
    assert by_name["pipelined-gpu-1"].seconds < by_name["pipelined-cpu"].seconds
    assert by_name["simple-gpu"].seconds < by_name["simple-cpu"].seconds
    assert by_name["imagej-fiji"].seconds > by_name["simple-cpu"].seconds
    for name, row in by_name.items():
        assert 0.65 < row.seconds / PAPER_TABLE2[name] < 1.35


def test_table2_laptop_validation(benchmark):
    def run():
        return (
            simulate_pipelined_gpu(LAPTOP, 42, 59, 1).makespan_seconds,
            simulate_pipelined_cpu(LAPTOP, 42, 59, 8).makespan_seconds,
        )

    gpu_s, cpu_s = once(benchmark, run)
    text = format_table(
        ["implementation", "time (s)", "paper (s)"],
        [["pipelined-gpu (laptop)", round(gpu_s, 1), 130],
         ["pipelined-cpu (laptop)", round(cpu_s, 1), 146]],
        title="Section VI laptop validation (i7-950 + GTX 560M, simulated)",
    )
    emit("table2_laptop", text)
    assert gpu_s == pytest.approx(130, rel=0.2)
    assert cpu_s == pytest.approx(146, rel=0.2)


@pytest.fixture(scope="module")
def bench_dataset(tmp_path_factory):
    d = tmp_path_factory.mktemp("t2")
    return make_synthetic_dataset(
        d, rows=6, cols=6, tile_height=64, tile_width=64, overlap=0.2, seed=2
    )


@pytest.mark.parametrize("name", sorted(ALL_IMPLEMENTATIONS))
def test_table2_real_execution(benchmark, bench_dataset, name):
    cls = ALL_IMPLEMENTATIONS[name]
    kwargs = {}
    if name == "mt-cpu":
        kwargs = {"workers": 2}
    elif name == "pipelined-cpu":
        kwargs = {"workers": 2}
    elif name == "pipelined-gpu":
        kwargs = {"devices": 2, "ccf_workers": 2}

    def run():
        return cls(**kwargs).run(bench_dataset)

    res = once(benchmark, run)
    assert res.displacements.is_complete()
