#!/usr/bin/env python
"""CI memory-budget smoke: streamed compose must hold its RSS budget.

Stitching geometry is not the point here -- tile positions come from the
synthetic dataset's ground truth -- the point is the *compose stage's*
memory.  Three measurements run in separate child processes so each
``ru_maxrss`` high-water mark is attributable:

``base``
    import numpy, open the dataset, touch one tile -- the interpreter +
    library floor every other child also pays;
    (synthesis and the control-grid check run in children too: a forked
    child inherits the parent's RSS high-water mark on Linux, so the
    orchestrating parent must stay stdlib-small for the deltas to mean
    anything);
``stream``
    ``stream_compose_to_tiff`` under ``--budget`` (LINEAR blend, the
    heaviest working set);
``inmem``
    the in-memory ``compose()`` of the same canvas -- this child is the
    honesty check: its RSS delta must *exceed* the budget, proving the
    grid genuinely cannot be composed in memory within it.

The smoke fails unless ``stream - base <= budget + slack`` (slack covers
allocator overhead and write buffers) while ``inmem - base > budget``.
A smaller control grid is then composed both ways in-process and the
streamed TIFF must be bit-identical to the in-memory reference.

Usage::

    python benchmarks/smoke_memory_budget.py            # CI defaults
    python benchmarks/smoke_memory_budget.py --budget 48M --slack 32M
"""

from __future__ import annotations

import argparse
import json
import resource
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

#: Over-budget grid: 8x8 tiles of 384 px at 10% overlap is a ~2803x2803
#: canvas -- a 63 MB float64 canvas and a ~141 MB LINEAR working set,
#: both comfortably past the 48 MiB default budget.
GRID = (8, 8, 384, 0.10)
CONTROL_GRID = (4, 4, 128, 0.25)

MIB = 1024 * 1024


def _parse_bytes(text: str) -> int:
    text = text.strip().upper()
    for suffix, mult in (("G", 1024**3), ("M", 1024**2), ("K", 1024)):
        if text.endswith(suffix):
            return int(float(text[:-1]) * mult)
    return int(text)


def _maxrss_bytes() -> int:
    # Linux reports ru_maxrss in KiB; macOS in bytes.
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return rss if sys.platform == "darwin" else rss * 1024


def _ground_truth_positions(ds):
    import numpy as np

    from repro.core.global_opt import GlobalPositions

    pos = np.zeros((ds.rows, ds.cols, 2), dtype=np.int64)
    for r in range(ds.rows):
        for c in range(ds.cols):
            pos[r, c] = ds.true_position(r, c)
    pos -= pos.reshape(-1, 2).min(axis=0)
    return GlobalPositions(positions=pos, method="ground-truth")


def _child(mode: str, dataset_dir: str, out: str, budget: int) -> None:
    """Run one measurement and print its JSON record on stdout."""
    if mode == "synth":
        from repro.synth import make_synthetic_dataset

        rows, cols, tile, overlap = GRID
        make_synthetic_dataset(dataset_dir, rows=rows, cols=cols,
                               tile_height=tile, tile_width=tile,
                               overlap=overlap, seed=17)
        print(json.dumps({"mode": mode}))
        return
    if mode == "control":
        _control_bit_identity(Path(out))
        print(json.dumps({"mode": mode}))
        return

    from repro.io.dataset import TileDataset

    ds = TileDataset(dataset_dir)
    record: dict = {"mode": mode}
    if mode == "base":
        ds.load(0, 0, dtype=None)
    else:
        from repro.core.compose import BlendMode

        positions = _ground_truth_positions(ds)
        load = lambda r, c: ds.load(r, c, dtype=None)  # noqa: E731
        if mode == "stream":
            from repro.core.streamcompose import stream_compose_to_tiff

            res = stream_compose_to_tiff(
                out, load, positions, ds.tile_shape,
                blend=BlendMode.LINEAR, memory_budget=budget,
            )
            record.update(peak_bytes=res.peak_bytes, stripes=res.stripes,
                          band_rows=res.band_rows)
        elif mode == "inmem":
            import numpy as np

            from repro.core.compose import compose
            from repro.io.tiff import write_tiff

            # float64 accumulation: the reference the streamed path is
            # bit-identical to (compose() defaults to float32).
            mosaic = compose(load, positions, ds.tile_shape,
                             blend=BlendMode.LINEAR, dtype=np.float64)
            write_tiff(out, np.clip(mosaic, 0, 65535).astype(np.uint16))
        else:
            raise SystemExit(f"unknown child mode {mode!r}")
    record["maxrss_bytes"] = _maxrss_bytes()
    print(json.dumps(record))


def _measure(mode: str, dataset_dir: Path, out: Path, budget: int) -> dict:
    proc = subprocess.run(
        [sys.executable, __file__, "--child", mode,
         "--dataset", str(dataset_dir), "--out", str(out),
         "--budget", str(budget)],
        capture_output=True, text=True,
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(f"FAIL: child {mode!r} exited {proc.returncode}")
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _control_bit_identity(tmp: Path) -> None:
    import numpy as np

    from repro.core.compose import BlendMode, compose
    from repro.core.streamcompose import stream_compose_to_tiff
    from repro.io.tiff import read_tiff
    from repro.synth import make_synthetic_dataset

    rows, cols, tile, overlap = CONTROL_GRID
    ds = make_synthetic_dataset(tmp / "control", rows=rows, cols=cols,
                                tile_height=tile, tile_width=tile,
                                overlap=overlap, seed=29)
    positions = _ground_truth_positions(ds)
    load = lambda r, c: ds.load(r, c, dtype=None)  # noqa: E731
    for blend in (BlendMode.OVERLAY, BlendMode.AVERAGE,
                  BlendMode.MAXIMUM, BlendMode.LINEAR):
        ref = compose(load, positions, ds.tile_shape, blend=blend,
                      dtype=np.float64)
        expected = np.clip(ref, 0, 65535).astype(np.uint16)
        path = tmp / f"control-{blend.name.lower()}.tif"
        stream_compose_to_tiff(path, load, positions, ds.tile_shape,
                               blend=blend, memory_budget=256 * 1024)
        if not np.array_equal(read_tiff(path), expected):
            raise SystemExit(
                f"FAIL: control grid streamed {blend.name} mosaic is not "
                f"bit-identical to the in-memory reference")
    print(f"control grid: streamed == in-memory for all 4 blends "
          f"({expected.shape[0]}x{expected.shape[1]} px)")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--budget", type=_parse_bytes, default=48 * MIB)
    ap.add_argument("--slack", type=_parse_bytes, default=32 * MIB,
                    help="allowed RSS overhead beyond the budget "
                         "(allocator, write buffers)")
    ap.add_argument("--child", help=argparse.SUPPRESS)
    ap.add_argument("--dataset", help=argparse.SUPPRESS)
    ap.add_argument("--out", help=argparse.SUPPRESS)
    args = ap.parse_args(argv)

    if args.child:
        _child(args.child, args.dataset, args.out, args.budget)
        return 0

    # NB: no repro/numpy imports in the parent before the measurement
    # children run -- a forked child starts with the parent's RSS
    # high-water mark, which would swamp every delta below.
    rows, cols, tile, _ = GRID
    with tempfile.TemporaryDirectory(prefix="smoke_membudget_") as tmpdir:
        tmp = Path(tmpdir)
        print(f"synthesizing {rows}x{cols} grid of {tile} px tiles ...")
        _measure("synth", tmp / "ds", tmp / "unused.tif", args.budget)

        base = _measure("base", tmp / "ds", tmp / "unused.tif", args.budget)
        stream = _measure("stream", tmp / "ds", tmp / "stream.tif",
                          args.budget)
        inmem = _measure("inmem", tmp / "ds", tmp / "inmem.tif", args.budget)

        base_rss = base["maxrss_bytes"]
        stream_delta = stream["maxrss_bytes"] - base_rss
        inmem_delta = inmem["maxrss_bytes"] - base_rss
        print(f"budget {args.budget / MIB:.0f} MiB (+{args.slack / MIB:.0f} "
              f"MiB slack); base RSS {base_rss / MIB:.1f} MiB")
        print(f"  stream: RSS delta {stream_delta / MIB:.1f} MiB, tracked "
              f"peak {stream['peak_bytes'] / MIB:.1f} MiB, "
              f"{stream['stripes']} stripes x {stream['band_rows']} rows")
        print(f"  inmem:  RSS delta {inmem_delta / MIB:.1f} MiB")

        if stream["peak_bytes"] > args.budget:
            print("FAIL: tracked compose peak exceeds the budget")
            return 1
        if inmem_delta <= args.budget:
            print("FAIL: in-memory compose fit inside the budget -- the "
                  "grid is not actually over-budget; enlarge GRID")
            return 1
        if stream_delta > args.budget + args.slack:
            print("FAIL: streamed compose RSS delta exceeds budget + slack")
            return 1

        # The two children rendered the same canvas: spot-check equality.
        from repro.io.tiff import read_tiff

        import numpy as np

        if not np.array_equal(read_tiff(tmp / "stream.tif"),
                              read_tiff(tmp / "inmem.tif")):
            print("FAIL: streamed over-budget mosaic differs from the "
                  "in-memory render")
            return 1
        print("over-budget mosaic: streamed == in-memory, RSS held")

        _measure("control", tmp / "ds", tmp, args.budget)
        print("control grid: streamed == in-memory for all 4 blends")

    print("OK: memory budget held; streamed output bit-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
