"""Ablations of the design choices DESIGN.md calls out.

1. **Padding to smooth sizes** (future work, Section VI.A): real FFT
   timing, padded vs native, on an awkward-factor size.
2. **Real-to-complex transforms** (future work): r2c vs c2c timing.
3. **Traversal order** (Section IV.A): peak live transforms per order --
   the basis for the chained-diagonal default.
4. **Synchronous-call overhead** (the Simple-GPU flaw): DES with the
   overhead removed, isolating how much of the Simple-GPU gap is
   synchronization vs serialization.
5. **Multi-GPU scaling** (future work asks about >2 GPUs): DES 1-4 GPUs.
"""

import numpy as np
import pytest
import scipy.fft as sf

from benchmarks._util import emit, once
from repro.analysis.report import format_series, format_table
from repro.fftlib.smooth import next_smooth_shape, pad_to_shape
from repro.grid.tile_grid import TileGrid
from repro.grid.traversal import Traversal, peak_live_transforms
from repro.gpu.costs import GpuCostModel
from repro.simulate.costmodel import PAPER_MACHINE, MachineModel
from repro.simulate.schedules import (
    simulate_pipelined_cpu,
    simulate_pipelined_cpu_numa,
    simulate_pipelined_gpu,
    simulate_simple_gpu,
)

AWKWARD = (348, 260)  # same prime structure as 1392x1040, scaled 1/4


def test_ablation_padding_to_smooth(benchmark):
    """Padded transforms should not be slower; usually faster."""
    rng = np.random.default_rng(0)
    a = rng.random(AWKWARD).astype(np.complex128)
    padded_shape = next_smooth_shape(AWKWARD)
    workspace = np.zeros(padded_shape, dtype=np.complex128)

    import time

    def best_of(fn, n=9):
        b = float("inf")
        for _ in range(n):
            t0 = time.perf_counter()
            fn()
            b = min(b, time.perf_counter() - t0)
        return b

    t_native = best_of(lambda: sf.fft2(a))
    t_padded = best_of(lambda: sf.fft2(pad_to_shape(a, padded_shape, out=workspace)))
    once(benchmark, lambda: sf.fft2(a))
    emit(
        "ablation_padding",
        f"Padding ablation ({AWKWARD} -> {padded_shape}):\n"
        f"  native fft2: {t_native * 1e3:.2f} ms\n"
        f"  padded fft2: {t_padded * 1e3:.2f} ms "
        f"(speedup {t_native / t_padded:.2f}x)",
    )
    assert t_padded < t_native * 1.6  # padding never catastrophic


def test_ablation_real_to_complex(benchmark):
    """r2c halves the work; the paper expects 'doing less work'."""
    rng = np.random.default_rng(1)
    a = rng.random((512, 512))
    ac = a.astype(np.complex128)

    import time

    def best_of(fn, n=9):
        b = float("inf")
        for _ in range(n):
            t0 = time.perf_counter()
            fn()
            b = min(b, time.perf_counter() - t0)
        return b

    t_c2c = best_of(lambda: sf.fft2(ac))
    t_r2c = best_of(lambda: sf.rfft2(a))
    once(benchmark, lambda: sf.rfft2(a))
    emit(
        "ablation_r2c",
        f"Real-to-complex ablation (512x512):\n"
        f"  c2c: {t_c2c * 1e3:.2f} ms\n"
        f"  r2c: {t_r2c * 1e3:.2f} ms (speedup {t_c2c / t_r2c:.2f}x)",
    )
    assert t_r2c < t_c2c


def test_ablation_traversal_orders(benchmark):
    grid = TileGrid(42, 59)

    def run():
        return {o: peak_live_transforms(grid, o) for o in Traversal}

    peaks = once(benchmark, run)
    transform_mb = 1040 * 1392 * 16 / 2**20
    text = format_table(
        ["traversal", "peak live transforms", "peak GPU MiB"],
        [[o.value, n, round(n * transform_mb)] for o, n in sorted(
            peaks.items(), key=lambda kv: kv[1]
        )],
        title="Traversal-order ablation, 42x59 grid (Section IV.A)",
    )
    emit("ablation_traversal", text)
    assert peaks[Traversal.CHAINED_DIAGONAL] < peaks[Traversal.ROW]
    # Pool bound fits a 6 GB card only with diagonal-family orders.
    assert peaks[Traversal.CHAINED_DIAGONAL] * transform_mb < 6 * 1024


def test_ablation_sync_overhead(benchmark):
    """How much of Simple-GPU's 9.3 min is synchronous-call overhead?"""
    def run():
        base = simulate_simple_gpu(PAPER_MACHINE, 42, 59).makespan_seconds
        no_sync_machine = MachineModel(
            **{**PAPER_MACHINE.__dict__, "gpu": GpuCostModel(sync_overhead=0.0)}
        )
        nosync = simulate_simple_gpu(no_sync_machine, 42, 59).makespan_seconds
        return base, nosync

    base, nosync = once(benchmark, run)
    emit(
        "ablation_sync_overhead",
        f"Simple-GPU synchronous-overhead ablation (42x59):\n"
        f"  with per-call sync overhead: {base:7.1f} s (paper: 556 s)\n"
        f"  overhead removed:            {nosync:7.1f} s\n"
        f"  -> {100 * (base - nosync) / base:.0f}% of Simple-GPU time is "
        f"synchronization, the rest is serialization (no overlap)",
    )
    assert nosync < base / 2


def test_ablation_multi_gpu_scaling(benchmark):
    """Future work: scalability beyond 2 GPUs (boundary duplication and
    the shared disk erode scaling)."""
    def run():
        # Pin the CCF pool at 8 threads: the machine-default heuristic
        # (logical cores minus 5 pipeline threads per GPU) would starve the
        # CCF stage at 3-4 GPUs on a 16-thread host -- itself a real
        # finding about scaling this architecture past 2 cards.
        return [
            (g, simulate_pipelined_gpu(
                PAPER_MACHINE, 42, 59, g, ccf_threads=8
            ).makespan_seconds)
            for g in (1, 2, 3, 4)
        ]

    series = once(benchmark, run)
    base = series[0][1]
    text = format_series(
        "gpus", "seconds",
        [(g, round(s, 1), round(base / s, 2)) for g, s in series],
        title="Multi-GPU scaling ablation, 42x59 grid, 8 CCF threads (3rd col: speedup)",
    )
    emit("ablation_multi_gpu", text)
    times = dict(series)
    assert times[2] < times[1] and times[4] < times[2]
    assert base / times[4] > 2.5  # still scaling at 4 GPUs


def test_ablation_p2p_ghost_exchange(benchmark):
    """Future work (Section VI): peer-to-peer copies instead of redundant
    ghost-column reads/transforms when scaling past 2 GPUs."""
    def run():
        out = []
        for g in (2, 3, 4):
            ghost = simulate_pipelined_gpu(
                PAPER_MACHINE, 42, 59, g, ccf_threads=8
            ).makespan_seconds
            p2p = simulate_pipelined_gpu(
                PAPER_MACHINE, 42, 59, g, ccf_threads=8, p2p=True
            ).makespan_seconds
            out.append((g, ghost, p2p))
        return out

    rows = once(benchmark, run)
    text = format_table(
        ["gpus", "ghost-duplication (s)", "p2p exchange (s)", "gain"],
        [[g, round(a, 1), round(b, 1), f"{(a - b) / a:.1%}"] for g, a, b in rows],
        title="P2P ghost-exchange ablation, 42x59 grid",
    )
    emit("ablation_p2p", text)
    for _g, ghost, p2p in rows:
        assert p2p <= ghost + 1e-9  # never worse
    # Gain grows with GPU count (more boundaries to duplicate).
    gains = [(a - b) / a for _, a, b in rows]
    assert gains[-1] >= gains[0]


def test_ablation_numa_pipelines(benchmark):
    """Future work (Section IV.B): one execution pipeline per CPU socket."""
    def run():
        flat = simulate_pipelined_cpu(PAPER_MACHINE, 42, 59, 16).makespan_seconds
        numa = simulate_pipelined_cpu_numa(
            PAPER_MACHINE, 42, 59, 16, sockets=2
        ).makespan_seconds
        return flat, numa

    flat, numa = once(benchmark, run)
    emit(
        "ablation_numa",
        f"Per-socket pipeline ablation (16 threads, 42x59):\n"
        f"  single machine-wide pipeline: {flat:5.1f} s\n"
        f"  one pipeline per socket:      {numa:5.1f} s "
        f"({(flat - numa) / flat:.1%} faster)\n"
        f"  socket-local pools trade ghost-column duplication for less\n"
        f"  cross-socket memory contention",
    )
    assert numa < flat


def test_ablation_hyper_q(benchmark):
    """Future work (Section VI): the Kepler Hyper-Q upgrade -- light
    kernels on a second concurrent channel alongside cuFFT."""
    def run():
        base = simulate_pipelined_gpu(PAPER_MACHINE, 42, 59, 1).makespan_seconds
        hq = simulate_pipelined_gpu(
            PAPER_MACHINE, 42, 59, 1, hyper_q=True
        ).makespan_seconds
        return base, hq

    base, hq = once(benchmark, run)
    emit(
        "ablation_hyper_q",
        f"Hyper-Q ablation (1 GPU, 42x59):\n"
        f"  Fermi (serial kernel channel): {base:5.1f} s\n"
        f"  Kepler Hyper-Q (NCC/reduce concurrent with cuFFT): {hq:5.1f} s\n"
        f"  -> {base / hq:.2f}x, the 'further performance improvements'\n"
        f"     the paper expects from GK110 (Section VI.A)",
    )
    assert hq < base
    assert 1.1 < base / hq < 1.6
