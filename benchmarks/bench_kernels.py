"""Kernel microbenchmarks (Section IV.A's per-operator measurements).

Real wall-clock pytest-benchmark timings of the core operators at a
reduced tile size, plus the FFTW-style planning-mode comparison the paper
ran (patient vs estimate).
"""

import numpy as np
import pytest
import scipy.fft as sf

from repro.core.ccf import ccf_at
from repro.core.ncc import normalized_correlation
from repro.core.peak import top_peaks
from repro.core.pciam import pciam, CcfMode
from repro.fftlib.plans import PlanCache, PlanningMode, TransformKind
from repro.synth.specimen import generate_plate

H, W = 256, 256


@pytest.fixture(scope="module")
def tiles():
    plate = generate_plate(600, 600, seed=1)
    return plate[100 : 100 + H, 100 : 100 + W], plate[105 : 105 + H, 290 : 290 + W]


@pytest.fixture(scope="module")
def spectra(tiles):
    return sf.fft2(tiles[0]), sf.fft2(tiles[1])


def test_bench_forward_fft(benchmark, tiles):
    a = tiles[0].astype(np.complex128)
    benchmark(lambda: sf.fft2(a))


def test_bench_ncc(benchmark, spectra):
    fa, fb = spectra
    out = np.empty_like(fa)
    benchmark(lambda: normalized_correlation(fa, fb, out=out))


def test_bench_inverse_fft(benchmark, spectra):
    fa, _ = spectra
    benchmark(lambda: sf.ifft2(fa))


def test_bench_reduce_max(benchmark, spectra):
    inv = sf.ifft2(normalized_correlation(*spectra))
    benchmark(lambda: top_peaks(inv, 1))


def test_bench_ccf(benchmark, tiles):
    a, b = tiles
    benchmark(lambda: ccf_at(a, b, 190, 5))


def test_bench_full_pciam(benchmark, tiles):
    a, b = tiles
    result = benchmark(lambda: pciam(a, b, ccf_mode=CcfMode.EXTENDED, n_peaks=2))
    assert result.correlation > 0.9


class TestPlanningModes:
    """Paper: patient planning gave ~2x faster transforms than estimate on
    the awkward 1392x1040 size; planning cost is amortized via wisdom."""

    def test_patient_never_slower_than_estimate_strategy(self):
        shape = (174, 130)  # scaled-down awkward factors (29x6, 13x10)
        est = PlanCache().plan(shape, TransformKind.C2C_FORWARD, PlanningMode.ESTIMATE)
        pat = PlanCache().plan(shape, TransformKind.C2C_FORWARD, PlanningMode.PATIENT)
        import time

        a = np.random.default_rng(0).random(shape).astype(np.complex128)
        def best_of(plan, n=7):
            b = float("inf")
            for _ in range(n):
                t0 = time.perf_counter()
                plan.execute(a)
                b = min(b, time.perf_counter() - t0)
            return b

        # Measured choice must be at least as fast as the heuristic one
        # (allowing 20 % measurement noise).
        assert best_of(pat) <= best_of(est) * 1.2

    def test_bench_planned_execution(self, benchmark):
        cache = PlanCache()
        plan = cache.plan((174, 130), TransformKind.C2C_FORWARD, PlanningMode.PATIENT)
        a = np.random.default_rng(0).random((174, 130)).astype(np.complex128)
        benchmark(lambda: plan.execute(a))
