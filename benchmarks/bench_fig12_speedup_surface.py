"""Fig. 12: Pipelined-CPU speedup surface over (threads, grid size).

Paper: the Fig. 11 scaling behaviour "is consistent across varying grid
sizes (128 to 1024 tiles per grid)".
"""

from benchmarks._util import emit, once
from repro.simulate.experiments import fig12_speedup_surface


def test_fig12_speedup_surface(benchmark):
    data = once(benchmark, fig12_speedup_surface)
    surface = data["surface"]
    threads = [1, 2, 4, 8, 12, 16]
    lines = [
        "Fig. 12 -- Pipelined-CPU speedup surface (rows: tiles, cols: threads)",
        "tiles  " + "".join(f"T={t:<6}" for t in threads),
    ]
    for n in data["tiles"]:
        lines.append(f"{n:5d}  " + "".join(f"{surface[(n, t)]:<8.2f}" for t in threads))
    emit("fig12_speedup_surface", "\n".join(lines))

    # Consistency across grid sizes: speedup at a given thread count varies
    # by < 15 % from 128 to 1024 tiles (the paper's claim).
    for t in (4, 8, 16):
        col = [surface[(n, t)] for n in data["tiles"]]
        assert max(col) / min(col) < 1.15, f"inconsistent at T={t}"
    # And the Fig. 11 shape holds at every grid size.
    for n in data["tiles"]:
        assert surface[(n, 8)] > 6.0
        assert surface[(n, 16)] >= surface[(n, 8)]
