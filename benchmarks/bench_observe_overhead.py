"""Observability overhead: tracing must be ~free off and cheap on.

The tentpole requirement for the observe layer: instrumented hot paths
cost one attribute read when tracing is disabled (<~0% measurable), and
well under 5% of wall-clock when a tracer + metrics registry is
attached.  Three configurations of the same Pipelined-CPU run:

- ``off``      -- no tracer/metrics (the NULL_TRACER fast path);
- ``on``       -- live ``Tracer`` + ``MetricsRegistry`` + queue sampler;
- ``disabled`` -- a ``Tracer(enabled=False)`` passed explicitly (the
  guard path with a non-null object, bounding the attribute-read cost).

Timing-threshold asserts are intentionally loose (CI machines jitter);
the emitted table is the real deliverable.
"""

import time

import pytest

from benchmarks._util import emit
from repro.analysis.report import format_table
from repro.impls import PipelinedCpu
from repro.observe import MetricsRegistry, Tracer
from repro.synth import make_synthetic_dataset

ROUNDS = 5


@pytest.fixture(scope="module")
def bench_dataset(tmp_path_factory):
    d = tmp_path_factory.mktemp("obs_bench")
    return make_synthetic_dataset(
        d, rows=6, cols=6, tile_height=256, tile_width=256, overlap=0.2, seed=42
    )


def _timed_run(dataset, **impl_kw):
    impl = PipelinedCpu(workers=2, **impl_kw)
    t0 = time.perf_counter()
    impl.run(dataset)
    return time.perf_counter() - t0


def test_observe_overhead(bench_dataset):
    tracer, metrics = Tracer(), MetricsRegistry()
    configs = {
        "off": {},
        "disabled": {"tracer": Tracer(enabled=False)},
        "on": {"tracer": tracer, "metrics": metrics},
    }
    # Warm-up (page cache, numpy/scipy internals), then interleave the
    # configurations round-robin so drift hits all three equally.
    for kw in configs.values():
        _timed_run(bench_dataset, **kw)
    samples = {name: [] for name in configs}
    for _ in range(ROUNDS):
        for name, kw in configs.items():
            samples[name].append(_timed_run(bench_dataset, **kw))
    medians = {
        name: sorted(s)[len(s) // 2] for name, s in samples.items()
    }
    off, disabled, on = medians["off"], medians["disabled"], medians["on"]

    def pct(x):
        return 100.0 * (x - off) / off

    emit(
        "observe_overhead",
        format_table(
            ["configuration", "median (s)", "overhead vs off"],
            [
                ["off (NULL_TRACER)", round(off, 4), "baseline"],
                ["disabled Tracer", round(disabled, 4), f"{pct(disabled):+.1f}%"],
                ["tracer + metrics on", round(on, 4), f"{pct(on):+.1f}%"],
            ],
            title=f"Pipelined-CPU 6x6/256px, median of {ROUNDS}",
        ),
    )
    # Sanity floor for the design goals; wide margins absorb CI jitter.
    assert pct(disabled) < 10.0, "disabled tracer must be near-free"
    assert pct(on) < 25.0, "enabled tracing should stay a small fraction"
    # The enabled run must actually have traced something.
    assert tracer.span_count() > 0
    assert metrics.snapshot()["counters"]
