"""Microbenchmarks of the general-purpose pipeline framework itself.

The paper's future work promises "a general purpose API for the pipeline"
(Section VI.A); these benchmarks characterize that API's own overheads so
users know what stage granularity amortizes them: monitor-queue transfer
cost, per-item stage dispatch cost, and end-to-end throughput of a
3-stage chain.
"""

import pytest

from repro.pipeline.graph import Pipeline
from repro.pipeline.queues import MonitorQueue
from repro.pipeline.stage import END_OF_STREAM


def test_bench_queue_put_get(benchmark):
    q = MonitorQueue()

    def cycle():
        for i in range(100):
            q.put(i)
        for _ in range(100):
            q.get()

    benchmark(cycle)


def test_bench_bounded_queue_contended(benchmark):
    """Producer/consumer pair across threads through a tiny queue."""
    import threading

    def run():
        q = MonitorQueue(maxsize=4)
        n = 500

        def producer():
            for i in range(n):
                q.put(i)
            q.close()

        total = 0

        def consumer():
            nonlocal total
            from repro.pipeline.queues import QueueClosed

            while True:
                try:
                    total += q.get()
                except QueueClosed:
                    return

        tp = threading.Thread(target=producer)
        tc = threading.Thread(target=consumer)
        tp.start(); tc.start()
        tp.join(); tc.join()
        assert total == n * (n - 1) // 2

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)


def test_bench_three_stage_chain_throughput(benchmark):
    """Items/second through source -> 2-worker transform -> sink."""
    N = 2000

    def run():
        pipe = Pipeline("bench")
        it = iter(range(N))

        def src(_i, _c):
            try:
                return next(it)
            except StopIteration:
                return END_OF_STREAM

        acc = []

        def sink(x, _c):
            acc.append(x)
            return None

        pipe.add_chain(
            [("src", src, 1), ("double", lambda x, c: 2 * x, 2), ("sink", sink, 1)],
            queue_size=64,
        )
        pipe.run()
        assert len(acc) == N

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)


def test_utilization_telemetry_identifies_bottleneck():
    """The slow stage reports the highest utilization."""
    import time

    pipe = Pipeline("util")
    it = iter(range(30))

    def src(_i, _c):
        try:
            return next(it)
        except StopIteration:
            return END_OF_STREAM

    def slow(x, _c):
        time.sleep(0.002)
        return x

    pipe.add_chain([("src", src, 1), ("slow", slow, 1),
                    ("sink", lambda x, c: None, 1)])
    t0 = time.perf_counter()
    pipe.run()
    wall = time.perf_counter() - t0
    util = pipe.utilization(wall)
    assert util["slow"] == max(util.values())
    assert util["slow"] > 0.5
