"""Fig. 5: the virtual-memory performance cliff.

Regenerates the speedup-vs-(tiles, threads) surface of the FFT-only,
never-free workload on the 24 GB configuration of the evaluation machine.
The paper's observation: speedup "falls off a cliff, across all thread
counts, when the tile count changes from 832 to 864".
"""

from benchmarks._util import emit, once
from repro.simulate.experiments import fig5_vm_cliff


def test_fig5_vm_cliff(benchmark):
    data = once(benchmark, fig5_vm_cliff)
    sp = data["speedup"]
    tiles = data["tiles"]
    threads = [1, 2, 4, 8, 12, 16]
    header = "tiles  " + "".join(f"T={t:<6}" for t in threads)
    lines = [
        "Fig. 5 -- speedup vs tile count (FFT workload, no frees, 24 GiB RAM)",
        header,
    ]
    for n in tiles:
        lines.append(
            f"{n:5d}  " + "".join(f"{sp[(n, t)]:<8.2f}" for t in threads)
        )
    lines.append(f"\ncliff at: {data['cliff_at']} tiles (paper: between 832 and 864)")
    emit("fig5_vm_cliff", "\n".join(lines))

    assert data["cliff_at"] == 864
    for t in (4, 8, 16):
        assert sp[(1024, t)] < 0.65 * sp[(832, t)]
